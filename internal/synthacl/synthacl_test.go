package synthacl

import (
	"math"
	"testing"

	"dolxml/internal/acl"
	"dolxml/internal/dol"
	"dolxml/internal/xmark"
	"dolxml/internal/xmltree"
)

func testDoc(t testing.TB) *xmltree.Document {
	t.Helper()
	return xmark.Generate(xmark.Scaled(99, 8000))
}

func TestSyntheticDeterministic(t *testing.T) {
	doc := testDoc(t)
	cfg := SynthConfig{Seed: 1, PropagationRatio: 0.1, AccessibilityRatio: 0.5}
	a := Synthetic(doc, cfg)
	b := Synthetic(doc, cfg)
	if !a.Equal(b) {
		t.Fatal("non-deterministic synthetic labeling")
	}
}

func TestSyntheticAccessibilityTracksRatio(t *testing.T) {
	doc := testDoc(t)
	for _, ratio := range []float64{0.1, 0.5, 0.9} {
		acc := Synthetic(doc, SynthConfig{Seed: 7, PropagationRatio: 0.3, AccessibilityRatio: ratio})
		got := AccessibleFraction(acc, doc.Len())
		if math.Abs(got-ratio) > 0.15 {
			t.Errorf("ratio %.1f: accessible fraction %.3f too far off", ratio, got)
		}
	}
}

func TestSyntheticLocalityCompresses(t *testing.T) {
	// Structural locality must make DOL far smaller than worst case: the
	// number of transitions should be a small multiple of the seed count,
	// not of the node count.
	doc := testDoc(t)
	cfg := SynthConfig{Seed: 3, PropagationRatio: 0.05, AccessibilityRatio: 0.5}
	acc := Synthetic(doc, cfg)
	lab := dol.FromAccessibleSet(acc, doc.Len())
	seeds := int(float64(doc.Len()) * cfg.PropagationRatio)
	if lab.NumTransitions() > 4*seeds {
		t.Errorf("transitions %d should be near seed count %d", lab.NumTransitions(), seeds)
	}
}

func TestSyntheticExtremes(t *testing.T) {
	doc := testDoc(t)
	all := Synthetic(doc, SynthConfig{Seed: 5, PropagationRatio: 0.2, AccessibilityRatio: 1.0})
	if all.Count() != doc.Len() {
		t.Errorf("ratio 1.0: %d of %d accessible", all.Count(), doc.Len())
	}
	none := Synthetic(doc, SynthConfig{Seed: 5, PropagationRatio: 0.2, AccessibilityRatio: 0.0})
	if none.Any() {
		t.Errorf("ratio 0.0: %d accessible", none.Count())
	}
}

func smallLiveLink(seed int64) LiveLinkConfig {
	return LiveLinkConfig{
		Seed:          seed,
		Folders:       3000,
		Departments:   4,
		GroupsPerDept: 3,
		UsersPerGroup: 5,
		Modes:         3,
		UserNoise:     0.3,
		CrossDept:     0.1,
	}
}

func TestLiveLinkShape(t *testing.T) {
	data := LiveLink(smallLiveLink(1))
	doc := data.Doc
	if doc.MaxDepth() > 20 {
		t.Errorf("max depth %d exceeds the real system's 19 (+root)", doc.MaxDepth())
	}
	avg := doc.AvgDepth()
	if avg < 4 || avg > 12 {
		t.Errorf("avg depth %.2f far from the real system's 7.9", avg)
	}
	if len(data.Matrices) != 3 {
		t.Fatalf("modes = %d", len(data.Matrices))
	}
	wantSubjects := 4*3 + 4*3*5
	if data.Dir.Len() != wantSubjects {
		t.Fatalf("subjects = %d, want %d", data.Dir.Len(), wantSubjects)
	}
}

func TestLiveLinkUsersCorrelateWithGroups(t *testing.T) {
	data := LiveLink(smallLiveLink(2))
	m := data.Matrices[0]
	doc := data.Doc
	// A user's rights should mostly agree with their group's: measure
	// disagreement over all users.
	var agree, total int
	for _, u := range data.Users {
		g, ok := data.Dir.Lookup(groupNameOf(data.Dir.Name(u)))
		if !ok {
			t.Fatalf("cannot find group for %s", data.Dir.Name(u))
		}
		for n := 0; n < doc.Len(); n += 7 {
			if m.Accessible(xmltree.NodeID(n), u) == m.Accessible(xmltree.NodeID(n), g) {
				agree++
			}
			total++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Errorf("user/group agreement %.3f; correlation too weak for the paper's regime", frac)
	}
}

// groupNameOf strips the "-userN" suffix.
func groupNameOf(userName string) string {
	for i := len(userName) - 1; i >= 0; i-- {
		if userName[i] == '-' {
			return userName[:i]
		}
	}
	return userName
}

func TestLiveLinkCodebookSublinear(t *testing.T) {
	// The headline property: codebook entries grow much slower than
	// 2^subjects, and transitions grow sublinearly in subjects.
	data := LiveLink(smallLiveLink(3))
	lab := dol.FromMatrix(data.Matrices[0])
	subjects := data.Dir.Len()
	entries := lab.Codebook().Len()
	if entries > data.Doc.Len()/4 {
		t.Errorf("codebook entries %d too close to node count %d", entries, data.Doc.Len())
	}
	if entries >= subjects*subjects {
		t.Errorf("codebook entries %d not sublinear-ish (subjects %d)", entries, subjects)
	}
	// Transition density below the paper's observed 1-in-10.
	if density := float64(lab.NumTransitions()) / float64(data.Doc.Len()); density > 0.5 {
		t.Errorf("transition density %.3f too high", density)
	}
}

func TestUnixFSShape(t *testing.T) {
	data := UnixFS(UnixFSConfig{Seed: 1, Files: 5000, Users: 20, Groups: 8})
	if data.Doc.Len() < 4000 || data.Doc.Len() > 7000 {
		t.Errorf("file count %d far from target 5000", data.Doc.Len())
	}
	if data.Dir.Len() != 28 {
		t.Fatalf("subjects = %d, want 28", data.Dir.Len())
	}
	h := data.Doc.TagHistogram()
	for _, tag := range []string{"fs", "home", "userdir", "proj", "projdir", "usr", "file"} {
		if h[tag] == 0 {
			t.Errorf("missing %q entries", tag)
		}
	}
}

func TestUnixFSSemantics(t *testing.T) {
	data := UnixFS(UnixFSConfig{Seed: 2, Files: 3000, Users: 10, Groups: 4})
	doc := data.Doc
	read := data.Matrices[UnixRead]
	write := data.Matrices[UnixWrite]

	// The root of the tree is 755: world readable, not world writable.
	for _, u := range data.Users {
		if !read.Accessible(0, u) {
			t.Fatalf("user %s cannot read the 755 root", data.Dir.Name(u))
		}
	}
	u1 := data.Users[1]
	if write.Accessible(0, u1) {
		t.Fatal("non-owner can write the 755 root")
	}

	// Each user's home directory is readable by its owner.
	userdirs := doc.NodesWithTag("userdir")
	if len(userdirs) != 10 {
		t.Fatalf("userdirs = %d", len(userdirs))
	}
	for i, ud := range userdirs {
		if !read.Accessible(ud, data.Users[i]) {
			t.Errorf("user %d cannot read own home", i)
		}
	}
}

func TestUnixFSOwnershipLocalityCompresses(t *testing.T) {
	data := UnixFS(UnixFSConfig{Seed: 3, Files: 8000, Users: 20, Groups: 8})
	lab := dol.FromMatrix(data.Matrices[UnixRead])
	// Ownership locality: transitions far below node count; the paper
	// observed density under 1 in 10 for all subjects.
	if density := float64(lab.NumTransitions()) / float64(data.Doc.Len()); density > 0.6 {
		t.Errorf("transition density %.3f too high for ownership-local data", density)
	}
	if lab.Codebook().Len() > 4000 {
		t.Errorf("codebook entries %d; expected strong correlation", lab.Codebook().Len())
	}
}

func TestGeneratorsProduceValidMatrices(t *testing.T) {
	data := LiveLink(smallLiveLink(4))
	for mode, m := range data.Matrices {
		if m.NumNodes() != data.Doc.Len() || m.NumSubjects() != data.Dir.Len() {
			t.Fatalf("mode %d: matrix %dx%d vs doc %d subjects %d",
				mode, m.NumNodes(), m.NumSubjects(), data.Doc.Len(), data.Dir.Len())
		}
	}
	// Round trip through DOL must be lossless.
	lab := dol.FromMatrix(data.Matrices[0])
	if !lab.Matrix().Equal(data.Matrices[0]) {
		t.Fatal("LiveLink matrix does not round trip through DOL")
	}

	fs := UnixFS(UnixFSConfig{Seed: 5, Files: 2000, Users: 8, Groups: 3})
	lab2 := dol.FromMatrix(fs.Matrices[UnixRead])
	if !lab2.Matrix().Equal(fs.Matrices[UnixRead]) {
		t.Fatal("UnixFS matrix does not round trip through DOL")
	}
}

func TestEffectiveSubjectsUnion(t *testing.T) {
	// A user plus their groups should see at least what the user alone
	// sees, matching paper footnote 4.
	data := LiveLink(smallLiveLink(6))
	m := data.Matrices[0]
	u := data.Users[0]
	eff := data.Dir.EffectiveSubjects(u)
	aloneCount, unionCount := 0, 0
	for n := 0; n < data.Doc.Len(); n++ {
		if m.Accessible(xmltree.NodeID(n), u) {
			aloneCount++
		}
		if m.AccessibleAny(xmltree.NodeID(n), eff) {
			unionCount++
		}
	}
	if unionCount < aloneCount {
		t.Fatalf("union %d < alone %d", unionCount, aloneCount)
	}
}

func checkSubjectID(t *testing.T, s acl.SubjectID) {
	t.Helper()
	if s == acl.InvalidSubject {
		t.Fatal("invalid subject id")
	}
}

func TestSubjectIDsValid(t *testing.T) {
	data := LiveLink(smallLiveLink(7))
	for _, s := range append(append([]acl.SubjectID{}, data.Groups...), data.Users...) {
		checkSubjectID(t, s)
	}
}

func BenchmarkLiveLink(b *testing.B) {
	cfg := smallLiveLink(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LiveLink(cfg)
	}
}

func BenchmarkSynthetic(b *testing.B) {
	doc := xmark.Generate(xmark.Scaled(1, 50000))
	cfg := SynthConfig{Seed: 1, PropagationRatio: 0.3, AccessibilityRatio: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthetic(doc, cfg)
	}
}
