package synthacl

import (
	"fmt"
	"math/rand"

	"dolxml/internal/acl"
	"dolxml/internal/xmltree"
)

// LiveLinkConfig parameterizes the LiveLink-like simulator. The real
// dataset (a production OpenText LiveLink instance) had tree-structured
// items of average depth 7.9 and maximum depth 19, 8639 subjects (users
// and groups) and ten action modes; the simulator reproduces those shape
// statistics at a configurable scale and generates department-correlated
// rights, the property behind the paper's sublinear codebook growth.
type LiveLinkConfig struct {
	Seed int64
	// Folders is the approximate number of tree nodes.
	Folders int
	// Departments is the number of top-level department subtrees.
	Departments int
	// GroupsPerDept and UsersPerGroup size the subject population.
	GroupsPerDept int
	UsersPerGroup int
	// Modes is the number of action modes (the real system had 10).
	Modes int
	// UserNoise is the probability that a user carries a personal
	// deviation (an extra grant or revocation on a random subtree) per
	// mode.
	UserNoise float64
	// CrossDept is the probability that a group is granted access to a
	// subtree of a foreign department.
	CrossDept float64
}

// DefaultLiveLink returns a laptop-scale configuration preserving the
// real system's proportions.
func DefaultLiveLink(seed int64) LiveLinkConfig {
	return LiveLinkConfig{
		Seed:          seed,
		Folders:       30000,
		Departments:   12,
		GroupsPerDept: 4,
		UsersPerGroup: 15,
		Modes:         10,
		UserNoise:     0.3,
		CrossDept:     0.1,
	}
}

// LiveLinkData is the simulator's output.
type LiveLinkData struct {
	Doc *xmltree.Document
	Dir *acl.Directory
	// Matrices holds one accessibility matrix per action mode, over all
	// subjects (groups first, then users).
	Matrices []*acl.Matrix
	Groups   []acl.SubjectID
	Users    []acl.SubjectID
	// DeptRoot maps each department index to its subtree root.
	DeptRoot []xmltree.NodeID
}

// LiveLink generates the simulated dataset.
func LiveLink(cfg LiveLinkConfig) *LiveLinkData {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Modes < 1 {
		cfg.Modes = 1
	}

	// --- Folder tree: departments under the root, then a random-walk
	// expansion biased to the real system's depth profile (avg ~7.9, max
	// 19).
	b := xmltree.NewBuilder()
	b.Begin("livelink")
	deptRoots := make([]xmltree.NodeID, cfg.Departments)
	perDept := cfg.Folders / cfg.Departments
	for d := 0; d < cfg.Departments; d++ {
		deptRoots[d] = b.Begin("dept")
		depth := 2 // livelink/dept
		remaining := perDept - 1
		for remaining > 0 {
			// Descend probability decays with depth, producing the real
			// system's profile: most items around depth 7-9, none beyond
			// 19.
			pDown := 0.9 - 0.05*float64(depth)
			switch {
			case depth < 19 && rng.Float64() < pDown:
				b.Begin("folder")
				depth++
				remaining--
			case depth > 2:
				b.End()
				depth--
			default:
				b.Begin("folder")
				depth++
				remaining--
			}
		}
		for depth > 1 {
			b.End()
			depth--
		}
	}
	b.End()
	doc := b.MustFinish()

	// --- Subjects.
	dir := acl.NewDirectory()
	var groups, users []acl.SubjectID
	groupDept := map[acl.SubjectID]int{}
	for d := 0; d < cfg.Departments; d++ {
		for g := 0; g < cfg.GroupsPerDept; g++ {
			gid := dir.MustAddGroup(fmt.Sprintf("dept%d-group%d", d, g))
			groups = append(groups, gid)
			groupDept[gid] = d
		}
	}
	userGroup := map[acl.SubjectID]acl.SubjectID{}
	for _, g := range groups {
		for u := 0; u < cfg.UsersPerGroup; u++ {
			uid := dir.MustAddUser(fmt.Sprintf("%s-user%d", dir.Name(g), u))
			if err := dir.AddMember(g, uid); err != nil {
				panic(err)
			}
			users = append(users, uid)
			userGroup[uid] = g
		}
	}
	numSubjects := dir.Len()

	// --- Rights per mode. Mode 0 is the broadest; each later mode is the
	// previous one minus random revocations (modes are correlated, like
	// subjects).
	randomSubtree := func(root xmltree.NodeID, maxSize int) xmltree.NodeID {
		for tries := 0; tries < 20; tries++ {
			end := doc.End(root)
			n := root + xmltree.NodeID(rng.Intn(int(end-root)+1))
			if doc.SubtreeSize(n) <= maxSize {
				return n
			}
		}
		return root
	}
	setRange := func(m *acl.Matrix, s acl.SubjectID, root xmltree.NodeID, allowed bool) {
		for n := root; n <= doc.End(root); n++ {
			m.Set(n, s, allowed)
		}
	}

	matrices := make([]*acl.Matrix, cfg.Modes)
	for mode := 0; mode < cfg.Modes; mode++ {
		m := acl.NewMatrix(doc.Len(), numSubjects)
		matrices[mode] = m

		// Group templates.
		for _, g := range groups {
			d := groupDept[g]
			// Home department: broad access, restricted as modes grow.
			grantProb := 1.0 - float64(mode)*0.07
			if rng.Float64() < grantProb {
				setRange(m, g, deptRoots[d], true)
				// Internal revocations (restricted folders), some with
				// re-grants nested inside — the layered rule structure
				// real LiveLink policies exhibit.
				for k := 0; k < 3+rng.Intn(6); k++ {
					restricted := randomSubtree(deptRoots[d], doc.SubtreeSize(deptRoots[d])/4+1)
					setRange(m, g, restricted, false)
					if rng.Intn(3) == 0 && doc.SubtreeSize(restricted) > 4 {
						setRange(m, g, randomSubtree(restricted, doc.SubtreeSize(restricted)/2+1), true)
					}
				}
				// Sibling-run revocations: contiguous children of one
				// folder, the horizontal locality real ACL data shows
				// (paper §2) — a single DOL run, but one CAM label per
				// sibling.
				for k := 0; k < 2+rng.Intn(3); k++ {
					var kids []xmltree.NodeID
					for tries := 0; tries < 12 && len(kids) < 4; tries++ {
						p := randomSubtree(deptRoots[d], doc.SubtreeSize(deptRoots[d])/2+1)
						kids = doc.Children(p)
					}
					if len(kids) < 4 {
						continue
					}
					i := rng.Intn(len(kids) - 2)
					j := i + 1 + rng.Intn(len(kids)-i-1)
					for n := kids[i]; n <= doc.End(kids[j]); n++ {
						m.Set(n, g, false)
					}
				}
			}
			// Occasional cross-department grants.
			if rng.Float64() < cfg.CrossDept {
				fd := rng.Intn(cfg.Departments)
				setRange(m, g, randomSubtree(deptRoots[fd], doc.SubtreeSize(deptRoots[fd])/8+1), true)
			}
		}
		// Users: copy the group template, plus rare personal deviations.
		for _, u := range users {
			g := userGroup[u]
			for n := 0; n < doc.Len(); n++ {
				if m.Accessible(xmltree.NodeID(n), g) {
					m.Set(xmltree.NodeID(n), u, true)
				}
			}
			if rng.Float64() < cfg.UserNoise {
				d := groupDept[g]
				target := randomSubtree(deptRoots[d], doc.SubtreeSize(deptRoots[d])/10+1)
				setRange(m, u, target, rng.Intn(2) == 0)
			}
		}
	}

	return &LiveLinkData{
		Doc:      doc,
		Dir:      dir,
		Matrices: matrices,
		Groups:   groups,
		Users:    users,
		DeptRoot: deptRoots,
	}
}
