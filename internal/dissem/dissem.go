// Package dissem implements secure dissemination of XML streams, the
// application sketched in the paper's conclusion (§7): because DOL is a
// document-order encoding, a single pass suffices to filter an XML stream
// down to the part a subject may see. The filter enforces the
// pruned-subtree (Gabillon–Bruno) view: an element is emitted exactly when
// it and every ancestor is accessible, so the output is a well-formed
// document fragment of the source.
package dissem

import (
	"encoding/xml"
	"fmt"
	"io"

	"dolxml/internal/acl"
	"dolxml/internal/dol"
	"dolxml/internal/xmltree"
)

// AccessFunc decides the accessibility of the node with the given
// document-order ID. IDs are assigned by the filter in document order as
// elements open, matching xmltree/DOL numbering (attributes are not
// numbered by the stream filter; they travel with their element).
type AccessFunc func(xmltree.NodeID) bool

// Filter copies the XML document on r to w in one pass, keeping only the
// elements visible under the pruned-subtree semantics: an element is
// written iff accessible reports true for it and for each of its
// ancestors. Invisible subtrees are consumed without buffering. Character
// data inside visible elements is preserved; comments and processing
// instructions are dropped (they carry no node identity).
//
// Note: because the stream filter does not materialize attribute nodes,
// its node numbering matches xmltree documents only for attribute-free
// input; use FilterLabeled (or securexml's ExportVisible) when the
// accessibility source was built from a parsed document with attributes.
func Filter(r io.Reader, w io.Writer, accessible AccessFunc) error {
	dec := xml.NewDecoder(r)
	enc := xml.NewEncoder(w)
	var next xmltree.NodeID
	// visible[i] records whether the i-th currently-open element is
	// emitted; an element is emitted only when all enclosing ones are.
	var visible []bool
	emitting := func() bool {
		for _, v := range visible {
			if !v {
				return false
			}
		}
		return true
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("dissem: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			id := next
			next++
			vis := emitting() && accessible(id)
			visible = append(visible, vis)
			if vis {
				if err := enc.EncodeToken(t); err != nil {
					return err
				}
			}
		case xml.EndElement:
			if len(visible) == 0 {
				return fmt.Errorf("dissem: unbalanced end element </%s>", t.Name.Local)
			}
			wasVisible := visible[len(visible)-1] && emitting()
			if wasVisible {
				if err := enc.EncodeToken(t); err != nil {
					return err
				}
			}
			visible = visible[:len(visible)-1]
		case xml.CharData:
			if len(visible) > 0 && emitting() {
				if err := enc.EncodeToken(t); err != nil {
					return err
				}
			}
		}
	}
	if len(visible) != 0 {
		return fmt.Errorf("dissem: %d unclosed elements", len(visible))
	}
	return enc.Flush()
}

// FilterLabeled filters the serialized form of a labeled document: doc
// provides node identities (including attribute nodes), lab and the
// effective subject set decide visibility, and the visible fragment is
// written to w. Unlike Filter this walks the already-parsed document, so
// attribute nodes participate in access control: an element's visible
// attributes are those whose attribute nodes are accessible.
func FilterLabeled(doc *xmltree.Document, lab *dol.Labeling, effective func(n xmltree.NodeID) bool, w io.Writer) error {
	if doc.Len() != lab.NumNodes() {
		return fmt.Errorf("dissem: labeling covers %d nodes, document has %d", lab.NumNodes(), doc.Len())
	}
	var write func(n xmltree.NodeID) error
	write = func(n xmltree.NodeID) error {
		tag := doc.Tag(n)
		if _, err := fmt.Fprintf(w, "<%s", tag); err != nil {
			return err
		}
		var kids []xmltree.NodeID
		for c := doc.FirstChild(n); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
			if !effective(c) {
				continue
			}
			if ct := doc.Tag(c); len(ct) > 0 && ct[0] == '@' {
				if _, err := fmt.Fprintf(w, " %s=%q", ct[1:], doc.Value(c)); err != nil {
					return err
				}
			} else {
				kids = append(kids, c)
			}
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		if v := doc.Value(n); v != "" {
			if err := xml.EscapeText(w, []byte(v)); err != nil {
				return err
			}
		}
		for _, c := range kids {
			if err := write(c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "</%s>", tag)
		return err
	}
	if doc.Len() == 0 || !effective(0) {
		return nil
	}
	return write(0)
}

// SubjectAccess adapts a labeling and a single subject to an AccessFunc.
func SubjectAccess(lab *dol.Labeling, s acl.SubjectID) AccessFunc {
	return func(n xmltree.NodeID) bool { return lab.Accessible(n, s) }
}
