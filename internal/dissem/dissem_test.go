package dissem

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/dol"
	"dolxml/internal/xmltree"
)

func TestFilterBasic(t *testing.T) {
	src := `<feed><public><headline>a</headline></public><premium><article>x</article></premium></feed>`
	// Nodes: feed0 public1 headline2 premium3 article4.
	denied := map[xmltree.NodeID]bool{3: true}
	var out strings.Builder
	err := Filter(strings.NewReader(src), &out, func(n xmltree.NodeID) bool { return !denied[n] })
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "premium") || strings.Contains(got, "article") {
		t.Fatalf("denied subtree leaked: %s", got)
	}
	if !strings.Contains(got, "<headline>a</headline>") {
		t.Fatalf("visible content lost: %s", got)
	}
	// Output must reparse.
	if _, err := xmltree.ParseString(got); err != nil {
		t.Fatalf("output not well-formed: %v\n%s", err, got)
	}
}

func TestFilterAccessibleUnderDenied(t *testing.T) {
	// Pruned semantics: an accessible node under a denied one is dropped.
	src := `<a><b><c/></b></a>`
	denied := map[xmltree.NodeID]bool{1: true} // b
	var out strings.Builder
	if err := Filter(strings.NewReader(src), &out, func(n xmltree.NodeID) bool { return !denied[n] }); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "<c") {
		t.Fatalf("c leaked despite denied ancestor: %s", out.String())
	}
}

func TestFilterRootDenied(t *testing.T) {
	var out strings.Builder
	if err := Filter(strings.NewReader("<a><b/></a>"), &out, func(xmltree.NodeID) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Fatalf("denied root should produce empty output, got %q", out.String())
	}
}

func TestFilterMalformed(t *testing.T) {
	var out strings.Builder
	if err := Filter(strings.NewReader("<a><b></a>"), &out, func(xmltree.NodeID) bool { return true }); err == nil {
		t.Fatal("malformed input should fail")
	}
}

// Property: for random attribute-free documents and random accessibility,
// the filtered output contains exactly the nodes whose whole ancestor
// chain is accessible, with structure preserved.
func TestFilterMatchesPrunedView(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(120))
		var xml strings.Builder
		if err := doc.WriteXML(&xml); err != nil {
			return false
		}
		acc := bitset.New(doc.Len())
		for n := 0; n < doc.Len(); n++ {
			if rng.Intn(3) > 0 {
				acc.Set(n)
			}
		}
		var out strings.Builder
		if err := Filter(strings.NewReader(xml.String()), &out,
			func(n xmltree.NodeID) bool { return acc.Test(int(n)) }); err != nil {
			return false
		}
		// Expected pruned view via the oracle.
		visible := func(n xmltree.NodeID) bool {
			for v := n; v != xmltree.InvalidNode; v = doc.Parent(v) {
				if !acc.Test(int(v)) {
					return false
				}
			}
			return true
		}
		if strings.TrimSpace(out.String()) == "" {
			return !visible(0)
		}
		got, err := xmltree.ParseString(out.String())
		if err != nil {
			return false
		}
		wantCount := 0
		for n := 0; n < doc.Len(); n++ {
			if visible(xmltree.NodeID(n)) {
				wantCount++
			}
		}
		if got.Len() != wantCount {
			return false
		}
		// Tag multiset must match the visible nodes' tags.
		wantHist := map[string]int{}
		for n := 0; n < doc.Len(); n++ {
			if visible(xmltree.NodeID(n)) {
				wantHist[doc.Tag(xmltree.NodeID(n))]++
			}
		}
		gotHist := got.TagHistogram()
		if len(gotHist) != len(wantHist) {
			return false
		}
		for k, v := range wantHist {
			if gotHist[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterLabeled(t *testing.T) {
	doc := xmltree.MustParseString(`<feed><item level="secret"><body>x</body></item><item level="open"><body>y</body></item></feed>`)
	// Nodes: feed0 item1 @level2 body3 item4 @level5 body6.
	m := acl.NewMatrix(doc.Len(), 1)
	for n := 0; n < doc.Len(); n++ {
		m.Set(xmltree.NodeID(n), 0, true)
	}
	// Deny the first item's subtree and the second item's level attribute.
	for n := xmltree.NodeID(1); n <= doc.End(1); n++ {
		m.Set(n, 0, false)
	}
	m.Set(5, 0, false)
	lab := dol.FromMatrix(m)
	var out strings.Builder
	err := FilterLabeled(doc, lab, func(n xmltree.NodeID) bool { return lab.Accessible(n, 0) }, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "secret") || strings.Contains(got, ">x<") {
		t.Fatalf("denied item leaked: %s", got)
	}
	if strings.Contains(got, "level=") {
		t.Fatalf("denied attribute leaked: %s", got)
	}
	if !strings.Contains(got, "<body>y</body>") {
		t.Fatalf("visible body lost: %s", got)
	}
}

func TestFilterLabeledDimensionMismatch(t *testing.T) {
	doc := xmltree.MustParseString("<a><b/></a>")
	lab := dol.FromMatrix(acl.NewMatrix(1, 1))
	if err := FilterLabeled(doc, lab, func(xmltree.NodeID) bool { return true }, &strings.Builder{}); err == nil {
		t.Fatal("mismatched labeling should fail")
	}
}

func TestSubjectAccess(t *testing.T) {
	m := acl.NewMatrix(3, 2)
	m.Set(1, 1, true)
	lab := dol.FromMatrix(m)
	fn := SubjectAccess(lab, 1)
	if fn(0) || !fn(1) || fn(2) {
		t.Fatal("SubjectAccess adapter wrong")
	}
}

func randomDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	open := 1
	for i := 1; i < n; i++ {
		for open > 1 && rng.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin([]string{"x", "y", "z"}[rng.Intn(3)])
		open++
	}
	for ; open > 0; open-- {
		b.End()
	}
	return b.MustFinish()
}
