package pathsum

import (
	"testing"
)

// feed streams a small two-block document into a fresh builder:
//
//	<a><b><c/></b><b><c/></b></a>   block 1: a b c   block 2: b c
//
// Tags: a=0, b=1, c=2. Codes: everything 7 except the second c (9), so
// class a/b/c degrades to mixed while a and a/b stay uniform.
func feed(t *testing.T) *Summary {
	t.Helper()
	b := NewBuilder()
	b.Entry(0, 0, 7) // <a>
	b.Entry(1, 0, 7) // <b>
	b.Entry(2, 2, 7) // <c/></b>
	b.EndBlock()
	b.Entry(1, 0, 7) // <b>
	b.Entry(2, 3, 9) // <c/></b></a>
	b.EndBlock()
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuilderClassesAndBlocks(t *testing.T) {
	s := feed(t)
	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3 (a, a/b, a/b/c)", s.NumNodes())
	}
	if s.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", s.NumBlocks())
	}
	a, ok := s.ChildOf(-1, 0)
	if !ok {
		t.Fatal("class a missing")
	}
	ab, ok := s.ChildOf(a, 1)
	if !ok {
		t.Fatal("class a/b missing")
	}
	abc, ok := s.ChildOf(ab, 2)
	if !ok {
		t.Fatal("class a/b/c missing")
	}
	for _, tc := range []struct {
		id     int32
		parent int32
		depth  int32
	}{{a, -1, 0}, {ab, a, 1}, {abc, ab, 2}} {
		n := s.NodeAt(tc.id)
		if n.Parent != tc.parent || n.Depth != tc.depth {
			t.Errorf("class %d: parent %d depth %d, want %d/%d", tc.id, n.Parent, n.Depth, tc.parent, tc.depth)
		}
	}
	if kids := s.ChildrenOf(-1); len(kids) != 1 || kids[0] != a {
		t.Errorf("ChildrenOf(root) = %v", kids)
	}
	if kids := s.ChildrenOf(ab); len(kids) != 1 || kids[0] != abc {
		t.Errorf("ChildrenOf(a/b) = %v", kids)
	}
	// Block 0 holds all three classes and starts in root context; block 1
	// holds only b and c and starts inside a.
	b0, b1 := s.Block(0), s.Block(1)
	if b0.Start != -1 || !b0.Has(a) || !b0.Has(ab) || !b0.Has(abc) {
		t.Errorf("block 0 wrong: start %d", b0.Start)
	}
	if b1.Start != a || b1.Has(a) || !b1.Has(ab) || !b1.Has(abc) {
		t.Errorf("block 1 wrong: start %d", b1.Start)
	}
}

func TestCodeModeDegradesOnly(t *testing.T) {
	s := feed(t)
	a, _ := s.ChildOf(-1, 0)
	ab, _ := s.ChildOf(a, 1)
	abc, _ := s.ChildOf(ab, 2)
	if n := s.NodeAt(a); n.Mode != CodeUniform || n.Code != 7 {
		t.Errorf("class a mode %d code %d, want uniform 7", n.Mode, n.Code)
	}
	if n := s.NodeAt(ab); n.Mode != CodeUniform || n.Code != 7 {
		t.Errorf("class a/b mode %d code %d, want uniform 7", n.Mode, n.Code)
	}
	if n := s.NodeAt(abc); n.Mode != CodeMixed {
		t.Errorf("class a/b/c mode %d, want mixed (saw codes 7 and 9)", n.Mode)
	}
}

func TestPageBits(t *testing.T) {
	s := feed(t)
	a, _ := s.ChildOf(-1, 0)
	want := make([]uint64, 1)
	want[0] = 1 << uint(a)
	got := s.PageBits(want)
	// Only block 0 holds class a.
	if got[0] != 1 {
		t.Fatalf("PageBits(a) = %b, want block 0 only", got[0])
	}
}

func TestBuilderRejectsUnbalanced(t *testing.T) {
	b := NewBuilder()
	b.Entry(0, 2, 0) // closes more than is open
	b.EndBlock()
	if _, err := b.Finish(); err == nil {
		t.Fatal("over-closing entry not rejected")
	}
	b = NewBuilder()
	b.Entry(0, 0, 0)
	b.EndBlock()
	if _, err := b.Finish(); err == nil {
		t.Fatal("unclosed element not rejected")
	}
	b = NewBuilder()
	b.Entry(0, 1, 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("unsealed block not rejected")
	}
}

func TestRegionRewriteIdentitySplices(t *testing.T) {
	s := feed(t)
	r, err := s.BeginRewrite(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Entry(1, 0, 7)
	r.Entry(2, 3, 9)
	r.EndBlock()
	ns, ok := r.Finish()
	if !ok {
		t.Fatal("identity rewrite did not line up")
	}
	if err := ns.VerifyAgainst(s); err != nil {
		t.Fatalf("identity rewrite changed the summary: %v", err)
	}
	// The original is untouched (copy-on-write).
	if s.NumBlocks() != 2 || s.NumNodes() != 3 {
		t.Fatal("original summary mutated")
	}
}

func TestRegionRewriteAddsClass(t *testing.T) {
	s := feed(t)
	r, err := s.BeginRewrite(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Entry(1, 0, 7)
	r.Entry(3, 1, 7) // new tag d under a/b: new class a/b/d
	r.Entry(2, 3, 9)
	r.EndBlock()
	ns, ok := r.Finish()
	if !ok {
		t.Fatal("rewrite did not line up")
	}
	if ns.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", ns.NumNodes())
	}
	a, _ := ns.ChildOf(-1, 0)
	ab, _ := ns.ChildOf(a, 1)
	abd, ok := ns.ChildOf(ab, 3)
	if !ok {
		t.Fatal("new class a/b/d missing")
	}
	if !ns.Block(1).Has(abd) || ns.Block(0).Has(abd) {
		t.Fatal("new class placed in the wrong block")
	}
	if _, ok := s.ChildOf(ab, 3); ok {
		t.Fatal("original summary gained the new class")
	}
}

func TestRegionRewriteContextMismatch(t *testing.T) {
	s := feed(t)
	r, err := s.BeginRewrite(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Close everything: block 1 expects to start inside a, so the exit
	// context no longer lines up and the caller must rebuild.
	r.Entry(0, 1, 7)
	r.EndBlock()
	if _, ok := r.Finish(); ok {
		t.Fatal("context mismatch not detected")
	}
	if _, err := s.BeginRewrite(1, 2); err == nil {
		t.Fatal("out-of-range region accepted")
	}
}

func TestVerifyAgainstDetectsDrift(t *testing.T) {
	s := feed(t)
	fresh := feed(t)
	if err := s.VerifyAgainst(fresh); err != nil {
		t.Fatalf("identical summaries do not verify: %v", err)
	}
	// A uniform claim the storage contradicts.
	a, _ := s.ChildOf(-1, 0)
	s.nodes[a].Code = 99
	if err := s.VerifyAgainst(fresh); err == nil {
		t.Fatal("wrong uniform code not detected")
	}
	s.nodes[a].Code = 7
	// Block-count drift.
	one := NewBuilder()
	one.Entry(0, 1, 7)
	one.EndBlock()
	os, err := one.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyAgainst(os); err == nil {
		t.Fatal("block-count drift not detected")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	s := feed(t)
	m := s.ToMeta()
	got, err := FromMeta(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyAgainst(s); err != nil {
		t.Fatalf("round-tripped summary drifted: %v", err)
	}
	if err := s.VerifyAgainst(got); err != nil {
		t.Fatalf("round-tripped summary drifted (reverse): %v", err)
	}
	// Validation: a forward parent reference must be rejected.
	bad := s.ToMeta()
	bad.Parents[0] = 5
	if _, err := FromMeta(bad); err == nil {
		t.Fatal("forward parent accepted")
	}
	bad = s.ToMeta()
	bad.Blocks[0].Start = 99
	if _, err := FromMeta(bad); err == nil {
		t.Fatal("out-of-range block start accepted")
	}
	bad = s.ToMeta()
	bad.Modes = bad.Modes[:1]
	if _, err := FromMeta(bad); err == nil {
		t.Fatal("column length mismatch accepted")
	}
}
