package pathsum

import "fmt"

// Meta is the serializable form of a Summary, embedded in the store's
// reopen metadata. Field names are terse because the block list scales
// with the store.
type Meta struct {
	Tags    []int32     `json:"t"`
	Parents []int32     `json:"p"`
	Modes   []uint8     `json:"m"`
	Codes   []uint32    `json:"c"`
	Blocks  []MetaBlock `json:"b"`
}

// MetaBlock mirrors BlockPaths.
type MetaBlock struct {
	Start int32    `json:"s"`
	Bits  []uint64 `json:"w,omitempty"`
}

// ToMeta serializes the summary.
func (s *Summary) ToMeta() *Meta {
	m := &Meta{
		Tags:    make([]int32, len(s.nodes)),
		Parents: make([]int32, len(s.nodes)),
		Modes:   make([]uint8, len(s.nodes)),
		Codes:   make([]uint32, len(s.nodes)),
		Blocks:  make([]MetaBlock, len(s.blocks)),
	}
	for i, n := range s.nodes {
		m.Tags[i] = n.Tag
		m.Parents[i] = n.Parent
		m.Modes[i] = uint8(n.Mode)
		m.Codes[i] = n.Code
	}
	for i, b := range s.blocks {
		m.Blocks[i] = MetaBlock{Start: b.Start, Bits: append([]uint64(nil), b.Bits...)}
	}
	return m
}

// FromMeta reconstructs and validates a summary: parents must precede
// children, the child map must stay canonical (one class per parent+tag),
// and depths are recomputed from the parent chain.
func FromMeta(m *Meta) (*Summary, error) {
	n := len(m.Tags)
	if len(m.Parents) != n || len(m.Modes) != n || len(m.Codes) != n {
		return nil, fmt.Errorf("pathsum: meta column lengths disagree (%d/%d/%d/%d)",
			len(m.Tags), len(m.Parents), len(m.Modes), len(m.Codes))
	}
	s := &Summary{
		nodes: make([]Node, n),
		child: make(map[childKey]int32, n),
	}
	for i := 0; i < n; i++ {
		p := m.Parents[i]
		if p < -1 || p >= int32(i) {
			return nil, fmt.Errorf("pathsum: class %d has parent %d", i, p)
		}
		if m.Tags[i] < 0 {
			return nil, fmt.Errorf("pathsum: class %d has tag %d", i, m.Tags[i])
		}
		if m.Modes[i] > uint8(CodeMixed) {
			return nil, fmt.Errorf("pathsum: class %d has mode %d", i, m.Modes[i])
		}
		k := childKey{p, m.Tags[i]}
		if _, dup := s.child[k]; dup {
			return nil, fmt.Errorf("pathsum: duplicate class (parent %d, tag %d)", p, m.Tags[i])
		}
		depth := int32(0)
		if p >= 0 {
			depth = s.nodes[p].Depth + 1
		}
		s.nodes[i] = Node{Tag: m.Tags[i], Parent: p, Depth: depth, Mode: CodeMode(m.Modes[i]), Code: m.Codes[i]}
		s.child[k] = int32(i)
	}
	s.blocks = make([]BlockPaths, len(m.Blocks))
	for i, b := range m.Blocks {
		if b.Start < -1 || int(b.Start) >= n {
			return nil, fmt.Errorf("pathsum: block %d starts in class %d of %d", i, b.Start, n)
		}
		s.blocks[i] = BlockPaths{Start: b.Start, Bits: append([]uint64(nil), b.Bits...)}
	}
	return s, nil
}
