// Package pathsum maintains a path summary over a NoK block store: one
// summary node per distinct root-to-tag label path (a DataGuide over
// element tags, after Arion et al.), with parent links, the access-code
// mode observed across the path's occurrences, and a per-block bitset of
// the path classes occurring in each block.
//
// The summary is tiny (one node per distinct label path — hundreds for
// XMark regardless of document size) but global: a query compiler can
// prove a twig unsatisfiable, route candidate scans to exactly the blocks
// holding a path class, and pre-resolve an access decision for every
// occurrence of a class whose codes are uniform — all before touching
// storage.
//
// Summaries are immutable once installed: region rewrites go through
// BeginRewrite, which extends a copy-on-write clone and splices its
// per-block sets, so a frozen store snapshot can share the pointer safely.
package pathsum

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// CodeMode classifies the access codes observed across a path class's
// occurrences.
type CodeMode uint8

const (
	// CodeUnknown means no occurrence has been observed (extinct class).
	CodeUnknown CodeMode = iota
	// CodeUniform means every observed occurrence carried the same
	// code-in-force; the class's access decision is resolvable once per
	// subject instead of once per node.
	CodeUniform
	// CodeMixed means occurrences carry divergent codes. Modes only
	// degrade (uniform → mixed): deletions never restore uniformity, so a
	// uniform claim stays sound across any update sequence.
	CodeMixed
)

// Node is one path class: the distinct label path identified by the chain
// of Parent links up to the root (Parent == -1 at depth 0).
type Node struct {
	Tag    int32
	Parent int32
	Depth  int32
	Mode   CodeMode
	Code   uint32
}

// BlockPaths records which path classes occur in one structure block.
// Start is the class of the innermost element open when the block begins
// (-1 = document root context); Bits is a bitset over class IDs. Bits may
// be shorter than the summary's node count — classes discovered after the
// block was sealed simply cannot occur in it.
type BlockPaths struct {
	Start int32
	Bits  []uint64
}

// Has reports whether class id occurs in the block.
func (b BlockPaths) Has(id int32) bool {
	w := int(id >> 6)
	return w >= 0 && w < len(b.Bits) && b.Bits[w]&(1<<(uint(id)&63)) != 0
}

// ForEach calls fn for every class occurring in the block, in id order.
func (b BlockPaths) ForEach(fn func(id int32)) {
	forEachBit(b.Bits, fn)
}

type childKey struct {
	parent int32
	tag    int32
}

// Summary is the path summary of one store state. Installed summaries are
// never mutated; updates build a clone via BeginRewrite.
type Summary struct {
	nodes  []Node
	child  map[childKey]int32
	blocks []BlockPaths

	childrenOnce sync.Once
	childrenIdx  [][]int32
}

// NumNodes returns the number of path classes.
func (s *Summary) NumNodes() int { return len(s.nodes) }

// NumBlocks returns the number of per-block class sets.
func (s *Summary) NumBlocks() int { return len(s.blocks) }

// NodeAt returns class id.
func (s *Summary) NodeAt(id int32) Node { return s.nodes[id] }

// Block returns block b's class set.
func (s *Summary) Block(b int) BlockPaths { return s.blocks[b] }

// ChildOf returns the class for tag under parent (-1 = root context).
func (s *Summary) ChildOf(parent, tag int32) (int32, bool) {
	id, ok := s.child[childKey{parent, tag}]
	return id, ok
}

// ChildrenOf returns the classes whose parent is p (-1 = root context).
// The index is built lazily on first use; summaries are immutable by then.
func (s *Summary) ChildrenOf(p int32) []int32 {
	s.childrenOnce.Do(func() {
		idx := make([][]int32, len(s.nodes)+1)
		for id := range s.nodes {
			slot := s.nodes[id].Parent + 1
			idx[slot] = append(idx[slot], int32(id))
		}
		s.childrenIdx = idx
	})
	return s.childrenIdx[p+1]
}

// PageBits returns a bitmap over blocks with bit b set when block b holds
// at least one class from want (a bitset over class IDs).
func (s *Summary) PageBits(want []uint64) []uint64 {
	out := make([]uint64, (len(s.blocks)+63)/64)
	for b := range s.blocks {
		w := s.blocks[b].Bits
		n := len(w)
		if len(want) < n {
			n = len(want)
		}
		for i := 0; i < n; i++ {
			if w[i]&want[i] != 0 {
				out[b>>6] |= 1 << (uint(b) & 63)
				break
			}
		}
	}
	return out
}

// Bytes estimates the summary's in-memory footprint.
func (s *Summary) Bytes() int {
	n := len(s.nodes) * 16
	for i := range s.blocks {
		n += 8 + len(s.blocks[i].Bits)*8
	}
	return n
}

// addOccurrence interns (parent, tag) and folds one occurrence's
// code-in-force into the class's mode. Modes only degrade.
func (s *Summary) addOccurrence(parent, tag, depth int32, code uint32) int32 {
	k := childKey{parent, tag}
	if id, ok := s.child[k]; ok {
		n := &s.nodes[id]
		switch n.Mode {
		case CodeUnknown:
			n.Mode, n.Code = CodeUniform, code
		case CodeUniform:
			if n.Code != code {
				n.Mode = CodeMixed
			}
		}
		return id
	}
	id := int32(len(s.nodes))
	s.nodes = append(s.nodes, Node{Tag: tag, Parent: parent, Depth: depth, Mode: CodeUniform, Code: code})
	s.child[k] = id
	return id
}

// Builder constructs a summary from a stream of NoK entries in document
// order. Feed every entry via Entry and seal each block boundary with
// EndBlock; Finish validates the document closed cleanly.
type Builder struct {
	s     *Summary
	stack []int32
	open  bool
	start int32
	bits  []uint64
	err   error
}

// NewBuilder returns a builder for an empty summary.
func NewBuilder() *Builder {
	return &Builder{s: &Summary{child: make(map[childKey]int32)}}
}

func (b *Builder) top() int32 {
	if len(b.stack) == 0 {
		return -1
	}
	return b.stack[len(b.stack)-1]
}

// Entry records one node: its tag, the number of elements its entry
// closes, and the access code in force at the node.
func (b *Builder) Entry(tag int32, closeCount int, code uint32) {
	if b.err != nil {
		return
	}
	if !b.open {
		b.open = true
		b.start = b.top()
	}
	id := b.s.addOccurrence(b.top(), tag, int32(len(b.stack)), code)
	for int(id>>6) >= len(b.bits) {
		b.bits = append(b.bits, 0)
	}
	b.bits[id>>6] |= 1 << (uint(id) & 63)
	b.stack = append(b.stack, id)
	if closeCount > len(b.stack) {
		b.err = fmt.Errorf("pathsum: entry closes %d elements with %d open", closeCount, len(b.stack))
		return
	}
	b.stack = b.stack[:len(b.stack)-closeCount]
}

// EndBlock seals the entries fed since the previous boundary as one block.
func (b *Builder) EndBlock() {
	if b.err != nil || !b.open {
		return
	}
	w := b.bits
	for len(w) > 0 && w[len(w)-1] == 0 {
		w = w[:len(w)-1]
	}
	b.s.blocks = append(b.s.blocks, BlockPaths{Start: b.start, Bits: append([]uint64(nil), w...)})
	b.open = false
	for i := range b.bits {
		b.bits[i] = 0
	}
}

// Finish returns the completed summary. The document must have closed
// every element and sealed every block.
func (b *Builder) Finish() (*Summary, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.open {
		return nil, errors.New("pathsum: unterminated block")
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("pathsum: %d elements left open", len(b.stack))
	}
	return b.s, nil
}

// RegionRewrite replays a region rewrite [i, j] against a copy-on-write
// clone: the caller feeds the region's new entries exactly as written and
// Finish splices the new block sets between the untouched prefix and
// suffix. The original summary is never mutated.
type RegionRewrite struct {
	orig *Summary
	b    *Builder
	i, j int
}

// BeginRewrite starts a rewrite of blocks [i, j] of s.
func (s *Summary) BeginRewrite(i, j int) (*RegionRewrite, error) {
	if i < 0 || j < i || j >= len(s.blocks) {
		return nil, fmt.Errorf("pathsum: rewrite region [%d, %d] of %d blocks", i, j, len(s.blocks))
	}
	clone := &Summary{
		nodes: append([]Node(nil), s.nodes...),
		child: make(map[childKey]int32, len(s.child)),
	}
	for k, v := range s.child {
		clone.child[k] = v
	}
	b := &Builder{s: clone}
	for id := s.blocks[i].Start; id >= 0; id = s.nodes[id].Parent {
		b.stack = append(b.stack, id)
	}
	for l, r := 0, len(b.stack)-1; l < r; l, r = l+1, r-1 {
		b.stack[l], b.stack[r] = b.stack[r], b.stack[l]
	}
	return &RegionRewrite{orig: s, b: b, i: i, j: j}, nil
}

// Entry records one rewritten entry (same contract as Builder.Entry).
func (r *RegionRewrite) Entry(tag int32, closeCount int, code uint32) {
	r.b.Entry(tag, closeCount, code)
}

// EndBlock seals one rewritten block.
func (r *RegionRewrite) EndBlock() { r.b.EndBlock() }

// Finish verifies the rewritten region exits in the same open-element
// context the old region did and returns the spliced summary. ok=false
// means the replay did not line up and the caller must rebuild the
// summary from storage.
func (r *RegionRewrite) Finish() (*Summary, bool) {
	if r.b.err != nil || r.b.open {
		return nil, false
	}
	want := int32(-1)
	if r.j+1 < len(r.orig.blocks) {
		want = r.orig.blocks[r.j+1].Start
	}
	if r.b.top() != want {
		return nil, false
	}
	clone := r.b.s
	nb := make([]BlockPaths, 0, len(r.orig.blocks)-(r.j-r.i+1)+len(clone.blocks))
	nb = append(nb, r.orig.blocks[:r.i]...)
	nb = append(nb, clone.blocks...)
	nb = append(nb, r.orig.blocks[r.j+1:]...)
	clone.blocks = nb
	return clone, true
}

// VerifyAgainst checks a maintained summary s against one rebuilt fresh
// from the same blocks: every live path must be present with the same
// depth and per-block occurrences, and every uniform-code claim must hold
// in storage. Extinct classes (left behind by deletions) are allowed as
// long as no block still references them; mixed-mode claims are always
// sound (they promise nothing).
func (s *Summary) VerifyAgainst(rebuilt *Summary) error {
	if len(s.blocks) != len(rebuilt.blocks) {
		return fmt.Errorf("pathsum: %d blocks, storage has %d", len(s.blocks), len(rebuilt.blocks))
	}
	mapTo := make([]int32, len(s.nodes))
	mapped := 0
	for id := range s.nodes {
		n := s.nodes[id]
		parent := int32(-1)
		if n.Parent >= 0 {
			parent = mapTo[n.Parent]
			if parent < 0 {
				mapTo[id] = -1
				continue
			}
		}
		rid, ok := rebuilt.child[childKey{parent, n.Tag}]
		if !ok {
			mapTo[id] = -1
			continue
		}
		mapTo[id] = rid
		mapped++
		rn := rebuilt.nodes[rid]
		if rn.Depth != n.Depth {
			return fmt.Errorf("pathsum: class %d at depth %d, storage says %d", id, n.Depth, rn.Depth)
		}
		if n.Mode == CodeUniform && (rn.Mode != CodeUniform || rn.Code != n.Code) {
			return fmt.Errorf("pathsum: class %d claims uniform code %d, storage disagrees", id, n.Code)
		}
	}
	if mapped != len(rebuilt.nodes) {
		return fmt.Errorf("pathsum: summary is missing %d live path classes", len(rebuilt.nodes)-mapped)
	}
	tmp := make([]uint64, (len(rebuilt.nodes)+63)/64)
	for b := range s.blocks {
		sb, rb := s.blocks[b], rebuilt.blocks[b]
		wantStart := int32(-1)
		if sb.Start >= 0 {
			if int(sb.Start) >= len(mapTo) || mapTo[sb.Start] < 0 {
				return fmt.Errorf("pathsum: block %d starts in extinct class %d", b, sb.Start)
			}
			wantStart = mapTo[sb.Start]
		}
		if wantStart != rb.Start {
			return fmt.Errorf("pathsum: block %d start class mismatch", b)
		}
		for i := range tmp {
			tmp[i] = 0
		}
		var bad error
		forEachBit(sb.Bits, func(id int32) {
			if bad != nil {
				return
			}
			if int(id) >= len(mapTo) || mapTo[id] < 0 {
				bad = fmt.Errorf("pathsum: block %d references extinct class %d", b, id)
				return
			}
			m := mapTo[id]
			tmp[m>>6] |= 1 << (uint(m) & 63)
		})
		if bad != nil {
			return bad
		}
		if !bitsEqual(tmp, rb.Bits) {
			return fmt.Errorf("pathsum: block %d class set disagrees with storage", b)
		}
	}
	return nil
}

func forEachBit(w []uint64, fn func(id int32)) {
	for i, word := range w {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(int32(i*64 + b))
			word &^= 1 << uint(b)
		}
	}
}

func bitsEqual(a, b []uint64) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var wa, wb uint64
		if i < len(a) {
			wa = a[i]
		}
		if i < len(b) {
			wb = b[i]
		}
		if wa != wb {
			return false
		}
	}
	return true
}
