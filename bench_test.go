// Package dolxml's root benchmark suite: one testing.B entry point per
// table/figure of the paper, delegating to the experiment harness in
// internal/bench at its test scale. Run the full paper-shaped sweep with
// cmd/dolbench; these benchmarks exist so `go test -bench=.` regenerates
// every experiment and reports its cost.
package dolxml

import (
	"testing"

	"dolxml/internal/bench"
)

// runExperiment executes one named experiment per benchmark iteration.
func runExperiment(b *testing.B, name string) {
	cfg := bench.QuickConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := bench.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no data", name)
		}
	}
}

// BenchmarkFig4a regenerates Figure 4(a): single-subject CAM vs DOL size
// across accessibility and propagation ratios.
func BenchmarkFig4a(b *testing.B) { runExperiment(b, "fig4a") }

// BenchmarkFig4b regenerates Figure 4(b): per-user CAM vs DOL across the
// LiveLink-like system's action modes.
func BenchmarkFig4b(b *testing.B) { runExperiment(b, "fig4b") }

// BenchmarkFig5 regenerates Figures 5(a)/5(b): codebook entries vs subject
// count on both multi-user datasets.
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figures 6(a)/6(b): transition nodes vs subject
// count on both multi-user datasets.
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkStorage regenerates the §5.1.1 DOL vs CAM storage comparison.
func BenchmarkStorage(b *testing.B) { runExperiment(b, "storage") }

// BenchmarkFig7 regenerates Figure 7(a-c): ε-NoK vs NoK time and answer
// ratios for Q1-Q3 across accessibility ratios.
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkJoins regenerates the §4.2 structural-join experiments for
// Q4-Q6 under both secure semantics.
func BenchmarkJoins(b *testing.B) { runExperiment(b, "joins") }

// BenchmarkUpdates regenerates the §3.4 update-cost and Proposition 1
// experiment.
func BenchmarkUpdates(b *testing.B) { runExperiment(b, "updates") }

// BenchmarkWorstCase regenerates the §2.1 uncorrelated-subjects worst-case
// analysis.
func BenchmarkWorstCase(b *testing.B) { runExperiment(b, "worstcase") }

// BenchmarkAblation regenerates the §3.3 page-skipping ablation.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkModes regenerates the footnote-2 mode-correlation comparison.
func BenchmarkModes(b *testing.B) { runExperiment(b, "modes") }
