// Command dolbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dolbench [-exp name] [-scale quick|default|paper] [-seed N] [-json path] [-strict]
//
// With no -exp flag every experiment runs. Experiment names: fig4a fig4b
// fig5 fig6 storage fig7 joins updates worstcase ablation modes parallel
// streaming pageskip wal writeload obs.
//
// With -strict, any table note starting with "VIOLATION" (an experiment's
// self-check failing, e.g. page skipping reading more pages than its
// baseline) makes the run exit non-zero — the CI guard mode.
//
// With -json, every table produced by the run is additionally written to
// the given file as indented JSON, so tooling can diff results across
// commits, e.g.:
//
//	dolbench -exp parallel -json BENCH_parallel.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dolxml/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+strings.Join(bench.Experiments, ", ")+" or all)")
	scale := flag.String("scale", "default", "dataset scale: quick, default or paper")
	seed := flag.Int64("seed", 1, "generator seed")
	jsonPath := flag.String("json", "", "also write the run's tables as JSON to this file")
	strict := flag.Bool("strict", false, "exit non-zero if any table notes a VIOLATION")
	flag.Parse()

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.QuickConfig()
	case "default":
		cfg = bench.DefaultConfig()
	case "paper":
		cfg = bench.PaperConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.LiveLink.Seed = *seed
	cfg.UnixFS.Seed = *seed

	names := bench.Experiments
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	var all []*bench.Table
	for _, name := range names {
		start := time.Now()
		tables, err := bench.Run(strings.TrimSpace(name), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		all = append(all, tables...)
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := bench.WriteTablesJSON(*jsonPath, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d tables to %s\n", len(all), *jsonPath)
	}
	if *strict {
		violations := 0
		for _, t := range all {
			for _, n := range t.Notes {
				if strings.HasPrefix(n, "VIOLATION") {
					fmt.Fprintf(os.Stderr, "%s: %s\n", t.ID, n)
					violations++
				}
			}
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "%d violation(s)\n", violations)
			os.Exit(1)
		}
	}
}
