// Command dolbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dolbench [-exp name] [-scale quick|default|paper] [-seed N]
//
// With no -exp flag every experiment runs. Experiment names: fig4a fig4b
// fig5 fig6 storage fig7 joins updates worstcase.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dolxml/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+strings.Join(bench.Experiments, ", ")+" or all)")
	scale := flag.String("scale", "default", "dataset scale: quick, default or paper")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.QuickConfig()
	case "default":
		cfg = bench.DefaultConfig()
	case "paper":
		cfg = bench.PaperConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.LiveLink.Seed = *seed
	cfg.UnixFS.Seed = *seed

	names := bench.Experiments
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		start := time.Now()
		tables, err := bench.Run(strings.TrimSpace(name), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
