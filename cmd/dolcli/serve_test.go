package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dolxml/securexml"
)

// buildServeStore seals a small store into dir for serve tests.
func buildServeStore(t *testing.T, dir string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := securexml.NewBuilder().
		LoadXMLString(`<doc><item><public>hello</public><secret>shh</secret></item></doc>`).
		AddUser("alice").
		Grant("alice", "read", "/doc").
		Revoke("alice", "read", "//secret").
		Seal(securexml.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// freePort reserves and releases a TCP port. The small reuse race is
// acceptable in tests; serve has no way to report a :0-chosen port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

// TestServeGracefulShutdown runs the multi-tenant serve command in-process,
// queries it, sends SIGTERM, and verifies serve returns cleanly, the port
// closes, and the stores reopen (their WAL checkpoints landed at close).
func TestServeGracefulShutdown(t *testing.T) {
	root := t.TempDir()
	for _, id := range []string{"t0", "t1"} {
		buildServeStore(t, filepath.Join(root, id))
	}
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- serve([]string{"-root", root, "-addr", addr, "-drain", "5s"})
	}()
	base := "http://" + addr
	waitHealthy(t, base)

	resp, err := http.Get(base + "/query?tenant=t0&user=alice&xpath=//public")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hello") {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	// SIGTERM to ourselves: serve's NotifyContext catches it and begins the
	// drain; the test process survives because the handler is installed.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
	// Stores closed cleanly: reopening must succeed and answer.
	for _, id := range []string{"t0", "t1"} {
		s, err := securexml.Open(filepath.Join(root, id), securexml.StoreOptions{})
		if err != nil {
			t.Fatalf("reopen %s: %v", id, err)
		}
		ms, err := s.Query("alice", "read", "//public")
		if err != nil || len(ms) != 1 {
			t.Fatalf("reopened %s: %v (%d matches)", id, err, len(ms))
		}
		s.Close()
	}
}

// TestServeSingleStoreShutdown exercises the classic -store mode through
// the same signal path.
func TestServeSingleStoreShutdown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	buildServeStore(t, dir)
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- serve([]string{"-store", dir, "-addr", addr, "-drain", "5s"})
	}()
	base := "http://" + addr
	waitHealthy(t, base)
	resp, err := http.Get(base + "/query?user=alice&xpath=//public")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hello") {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after SIGTERM")
	}
	if s, err := securexml.Open(dir, securexml.StoreOptions{}); err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	} else {
		s.Close()
	}
}
