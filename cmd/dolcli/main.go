// Command dolcli builds and queries secure XML stores from the shell.
//
// Usage:
//
//	dolcli build -xml doc.xml -policy rules.acl -store DIR
//	dolcli query -store DIR -user NAME -mode read -xpath '//item[name]'
//	dolcli query -store DIR -admin -xpath '//item'
//	dolcli query -store DIR -user NAME -xpath '//item' -limit 10 -timeout 5s
//	dolcli query -store DIR -user NAME -xpath '//item' -stats [-no-summaries]
//	dolcli query -store DIR -user NAME -xpath '//item' -analyze
//	dolcli explain -store DIR -user NAME -xpath '//item' [-analyze] [-json]
//	dolcli grant  -store DIR -subject NAME -mode read -xpath '//x' [-node-only] [-durability grouped]
//	dolcli revoke -store DIR -subject NAME -mode read -xpath '//x' [-node-only] [-durability grouped]
//	dolcli export -store DIR -user NAME -mode read [-o view.xml]
//	dolcli stats -store DIR
//	dolcli serve -store DIR -addr 127.0.0.1:9464 [-slow 100ms] [-snapshot-log 1s] [-recorder 30s] [-access-log -]
//	dolcli serve -root TENANTS_DIR [-max-open 16] [-pool-budget 67108864] [-tokens tokens.json] [-rate 50] [-access-log access.jsonl]
//
// The policy file is line-oriented:
//
//	user  alice
//	group doctors
//	member doctors alice          # member <group> <subject>
//	mode  read                    # (read and write are pre-registered)
//	grant doctors read /hospital  # grant <subject> <mode> <xpath>
//	revoke doctors read //billing
//	grant-local ...               # non-cascading variants
//	revoke-local ...
//	default permit                # open world
//
// Blank lines and lines starting with # are ignored.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"dolxml/securexml"
	"dolxml/securexml/registry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = build(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "explain":
		err = explain(os.Args[2:])
	case "grant":
		err = setAccess(os.Args[2:], true)
	case "revoke":
		err = setAccess(os.Args[2:], false)
	case "export":
		err = export(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	case "serve":
		err = serve(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dolcli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dolcli {build|query|explain|grant|revoke|export|stats|serve} [flags]")
	os.Exit(2)
}

func build(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	xmlPath := fs.String("xml", "", "XML document to secure")
	policyPath := fs.String("policy", "", "policy rules file")
	storeDir := fs.String("store", "", "output store directory")
	fs.Parse(args)
	if *xmlPath == "" || *storeDir == "" {
		return fmt.Errorf("build requires -xml and -store")
	}
	f, err := os.Open(*xmlPath)
	if err != nil {
		return err
	}
	defer f.Close()
	b := securexml.NewBuilder().LoadXML(f)
	if *policyPath != "" {
		pf, err := os.Open(*policyPath)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := applyPolicy(b, pf.Name(), pf); err != nil {
			return err
		}
	}
	s, err := b.Seal(securexml.StoreOptions{})
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.Save(*storeDir); err != nil {
		return err
	}
	st, err := s.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stored %d nodes on %d pages; %d transitions, %d codebook entries\n",
		st.Nodes, st.StructurePages, st.Transitions, st.CodebookEntries)
	return nil
}

// applyPolicy parses the line-oriented policy format into builder calls.
func applyPolicy(b *securexml.Builder, name string, r *os.File) error {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func() error {
			return fmt.Errorf("%s:%d: malformed directive %q", name, lineNo, line)
		}
		switch fields[0] {
		case "user":
			if len(fields) != 2 {
				return bad()
			}
			b.AddUser(fields[1])
		case "group":
			if len(fields) != 2 {
				return bad()
			}
			b.AddGroup(fields[1])
		case "member":
			if len(fields) != 3 {
				return bad()
			}
			b.AddMember(fields[1], fields[2])
		case "mode":
			if len(fields) != 2 {
				return bad()
			}
			b.AddMode(fields[1])
		case "grant", "revoke", "grant-local", "revoke-local":
			if len(fields) != 4 {
				return bad()
			}
			subject, mode, xpath := fields[1], fields[2], fields[3]
			switch fields[0] {
			case "grant":
				b.Grant(subject, mode, xpath)
			case "revoke":
				b.Revoke(subject, mode, xpath)
			case "grant-local":
				b.GrantLocal(subject, mode, xpath)
			case "revoke-local":
				b.RevokeLocal(subject, mode, xpath)
			}
		case "default":
			if len(fields) != 2 || fields[1] != "permit" {
				return bad()
			}
			b.PermitByDefault()
		default:
			return bad()
		}
	}
	return sc.Err()
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	user := fs.String("user", "", "querying user")
	mode := fs.String("mode", "read", "action mode")
	xpath := fs.String("xpath", "", "twig query")
	admin := fs.Bool("admin", false, "bypass access control")
	pruned := fs.Bool("pruned", false, "use the pruned-subtree (Gabillon-Bruno) semantics")
	limit := fs.Int("limit", 0, "stop after this many answers (0 = all)")
	timeout := fs.Duration("timeout", 0, "abort the query after this duration (0 = none)")
	noSummaries := fs.Bool("no-summaries", false, "disable structure-aware page skipping")
	noPathSummary := fs.Bool("no-pathsummary", false, "disable path-summary routing (empty-query detection, path-class candidate filtering, pre-resolved access)")
	showStats := fs.Bool("stats", false, "print page-read and cache statistics for the query")
	analyze := fs.Bool("analyze", false, "trace the query and print per-operator attribution (pages, skips, probes, time) to stderr")
	fs.Parse(args)
	if *storeDir == "" || *xpath == "" {
		return fmt.Errorf("query requires -store and -xpath")
	}
	if !*admin && *user == "" {
		return fmt.Errorf("query requires -user (or -admin)")
	}
	s, err := securexml.Open(*storeDir, securexml.StoreOptions{})
	if err != nil {
		return err
	}
	defer s.Close()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := securexml.QueryOptions{
		Pruned:             *pruned,
		Unrestricted:       *admin,
		Limit:              *limit,
		DisableSummarySkip: *noSummaries,
		DisablePathSummary: *noPathSummary,
	}
	if *analyze {
		if *showStats {
			return fmt.Errorf("-analyze and -stats are mutually exclusive (analyze reports per-operator stats)")
		}
		opts.Analyze = &securexml.QueryAnalysis{}
	}
	var matches []securexml.Match
	before := s.MetricsSnapshot()
	if *showStats {
		// Drive the streaming cursor so skip counters can be sampled, then
		// sort into document order to match the batch API's output.
		cur, err := s.QueryCursor(ctx, *user, *mode, *xpath, opts)
		if err != nil {
			return err
		}
		for {
			m, ok, err := cur.Next(ctx)
			if err != nil {
				cur.Close()
				return err
			}
			if !ok {
				break
			}
			matches = append(matches, m)
		}
		if err := cur.Close(); err != nil {
			return err
		}
		sort.Slice(matches, func(i, j int) bool { return matches[i].Node < matches[j].Node })
	} else {
		matches, err = s.QueryCtx(ctx, *user, *mode, *xpath, opts)
		if err != nil {
			return err
		}
	}
	for _, m := range matches {
		if m.Value != "" {
			fmt.Printf("node %d <%s> %q\n", m.Node, m.Tag, m.Value)
		} else {
			fmt.Printf("node %d <%s>\n", m.Node, m.Tag)
		}
	}
	fmt.Fprintf(os.Stderr, "%d answers\n", len(matches))
	if *showStats {
		// Sampled after Close so every pipeline producer has settled. All
		// numbers come from the store's one metrics registry — the same
		// counters MetricsSnapshot, dolcli serve and dolbench report.
		after := s.MetricsSnapshot()
		d := func(name string) int64 { return after.Get(name) - before.Get(name) }
		gets, hits := d("pool_gets"), d("pool_hits")
		ratio := 0.0
		if gets > 0 {
			ratio = float64(hits) / float64(gets)
		}
		decHits, decMisses := d("decode_cache_hits"), d("decode_cache_misses")
		decRatio := 0.0
		if decHits+decMisses > 0 {
			decRatio = float64(decHits) / float64(decHits+decMisses)
		}
		fmt.Fprintf(os.Stderr, "pages read:       %d (pool hit ratio %.2f)\n", d("pool_misses"), ratio)
		fmt.Fprintf(os.Stderr, "pages skipped:    %d structure, %d access\n",
			d("query_pages_skipped_struct"), d("query_pages_skipped_access"))
		fmt.Fprintf(os.Stderr, "candidates cut:   %d (%d by path class)\n",
			d("query_candidates_rejected"), d("query_candidates_rejected_path"))
		fmt.Fprintf(os.Stderr, "path routing:     %d empty short-circuits, %d classes pre-resolved\n",
			d("query_path_empty_total"), d("query_path_classes_preresolved"))
		fmt.Fprintf(os.Stderr, "decode cache:     %d hits, %d misses (ratio %.2f)\n", decHits, decMisses, decRatio)
	}
	if opts.Analyze.Ready() {
		if err := opts.Analyze.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

// explain prints a query's compiled plan without executing it; with
// -analyze it executes once and annotates the plan with per-operator
// attribution.
func explain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	user := fs.String("user", "", "querying user")
	mode := fs.String("mode", "read", "action mode")
	xpath := fs.String("xpath", "", "twig query")
	admin := fs.Bool("admin", false, "bypass access control")
	pruned := fs.Bool("pruned", false, "use the pruned-subtree (Gabillon-Bruno) semantics")
	limit := fs.Int("limit", 0, "plan with an answer limit (0 = all)")
	noSummaries := fs.Bool("no-summaries", false, "disable structure-aware page skipping")
	noPathSummary := fs.Bool("no-pathsummary", false, "disable path-summary routing")
	analyze := fs.Bool("analyze", false, "execute the query once and annotate the plan with per-operator attribution")
	asJSON := fs.Bool("json", false, "emit JSON instead of the text report")
	fs.Parse(args)
	if *storeDir == "" || *xpath == "" {
		return fmt.Errorf("explain requires -store and -xpath")
	}
	if !*admin && *user == "" {
		return fmt.Errorf("explain requires -user (or -admin)")
	}
	s, err := securexml.Open(*storeDir, securexml.StoreOptions{})
	if err != nil {
		return err
	}
	defer s.Close()
	opts := securexml.QueryOptions{
		Pruned:             *pruned,
		Unrestricted:       *admin,
		Limit:              *limit,
		DisableSummarySkip: *noSummaries,
		DisablePathSummary: *noPathSummary,
	}
	ctx := context.Background()
	if *analyze {
		an := &securexml.QueryAnalysis{}
		opts.Analyze = an
		if _, err := s.QueryCtx(ctx, *user, *mode, *xpath, opts); err != nil {
			return err
		}
		if *asJSON {
			return an.WriteJSON(os.Stdout)
		}
		return an.WriteText(os.Stdout)
	}
	plan, err := s.Explain(ctx, *user, *mode, *xpath, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		return plan.WriteJSON(os.Stdout)
	}
	return plan.WriteText(os.Stdout)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory (single-tenant mode)")
	root := fs.String("root", "", "tenant root directory (multi-tenant mode: one store per tenant id)")
	addr := fs.String("addr", "127.0.0.1:9464", "listen address")
	slow := fs.Duration("slow", 0, "slow-query threshold: queries at least this slow dump their trace to stderr (0 = off)")
	snapLog := fs.Duration("snapshot-log", 0, "slow-pin threshold: snapshot pins held at least this long are reported to stderr — long pins keep retired page versions alive (0 = off)")
	maxOpen := fs.Int("max-open", 16, "multi-tenant: max concurrently open stores (LRU beyond)")
	poolBudget := fs.Int64("pool-budget", 64<<20, "multi-tenant: global buffer-pool byte budget shared across open stores")
	cacheBudget := fs.Int64("cache-budget", 16<<20, "multi-tenant: global decode-cache byte budget shared across open stores")
	tokensFile := fs.String("tokens", "", "multi-tenant: JSON file mapping bearer tokens to {\"tenant\",\"subject\",\"admin\"} (omit for open trusted mode)")
	rate := fs.Float64("rate", 0, "multi-tenant: sustained per-principal queries/sec (token bucket; 0 = unlimited)")
	burst := fs.Int("burst", 0, "multi-tenant: rate-limit burst depth (default ~rate)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown: in-flight drain deadline after SIGTERM/SIGINT")
	recorder := fs.Duration("recorder", 0, "single-tenant: dump the flight-recorder report to stderr at this interval (0 = off; /debug/queries always serves it on demand)")
	accessLogPath := fs.String("access-log", "", "write one JSON line per /query and /explain request to this file (\"-\" = stderr)")
	fs.Parse(args)
	if (*storeDir == "") == (*root == "") {
		return fmt.Errorf("serve requires exactly one of -store or -root")
	}
	var accessLog *os.File
	if *accessLogPath == "-" {
		accessLog = os.Stderr
	} else if *accessLogPath != "" {
		var err error
		accessLog, err = os.OpenFile(*accessLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer accessLog.Close()
	}

	// SIGTERM/SIGINT begins a graceful shutdown: stop accepting, drain
	// in-flight requests bounded by -drain, then close stores so their WAL
	// checkpoints land.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var handler http.Handler
	var shutdown func(context.Context) error
	if *root != "" {
		reg, err := registry.New(registry.Options{
			Root:             *root,
			MaxOpen:          *maxOpen,
			PoolBytes:        *poolBudget,
			DecodeCacheBytes: *cacheBudget,
			Store: securexml.StoreOptions{
				SlowQueryThreshold: *slow,
				SlowPinThreshold:   *snapLog,
			},
		})
		if err != nil {
			return err
		}
		var tokens map[string]registry.Token
		if *tokensFile != "" {
			raw, err := os.ReadFile(*tokensFile)
			if err != nil {
				return err
			}
			if err := json.Unmarshal(raw, &tokens); err != nil {
				return fmt.Errorf("parsing %s: %w", *tokensFile, err)
			}
		}
		sopts := registry.ServerOptions{
			Tokens:       tokens,
			RatePerSec:   *rate,
			Burst:        *burst,
			DrainTimeout: *drain,
		}
		if accessLog != nil {
			sopts.AccessLog = accessLog
		}
		srv := registry.NewServer(reg, sopts)
		handler = srv
		shutdown = srv.Shutdown
	} else {
		s, err := securexml.Open(*storeDir, securexml.StoreOptions{
			SlowQueryThreshold: *slow,
			SlowPinThreshold:   *snapLog,
		})
		if err != nil {
			return err
		}
		var logger *accessLogger
		if accessLog != nil {
			logger = &accessLogger{w: accessLog}
		}
		mux := http.NewServeMux()
		// DebugHandler carries /debug/vars (JSON), /metrics (Prometheus) and
		// /debug/queries (the flight recorder).
		mux.Handle("/debug/vars", s.DebugHandler())
		mux.Handle("/metrics", s.DebugHandler())
		mux.Handle("/debug/queries", s.DebugHandler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		parseOpts := func(r *http.Request) (user, mode string, opts securexml.QueryOptions) {
			q := r.URL.Query()
			opts = securexml.QueryOptions{
				Unrestricted:       q.Get("admin") != "",
				Pruned:             q.Get("pruned") != "",
				DisablePathSummary: q.Get("nopathsummary") != "",
			}
			if lim := q.Get("limit"); lim != "" {
				fmt.Sscanf(lim, "%d", &opts.Limit)
			}
			mode = q.Get("mode")
			if mode == "" {
				mode = "read"
			}
			return q.Get("user"), mode, opts
		}
		mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
			user, mode, opts := parseOpts(r)
			var qt *securexml.QueryTrace
			if logger != nil {
				// The log line reports pages pinned; the counting trace
				// provides them without retaining an event log.
				qt = securexml.NewCountingQueryTrace()
				opts.Trace = qt
			}
			start := time.Now()
			ms, err := s.QueryCtx(r.Context(), user, mode, r.URL.Query().Get("xpath"), opts)
			if err != nil {
				logger.log("/query", user, r.URL.Query().Get("xpath"), opts, http.StatusBadRequest, time.Since(start), qt, 0)
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			logger.log("/query", user, r.URL.Query().Get("xpath"), opts, http.StatusOK, time.Since(start), qt, len(ms))
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(ms)
		})
		mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
			user, mode, opts := parseOpts(r)
			q := r.URL.Query()
			asText := q.Get("format") == "text"
			if q.Get("analyze") != "" {
				an := &securexml.QueryAnalysis{}
				opts.Analyze = an
				if _, err := s.QueryCtx(r.Context(), user, mode, q.Get("xpath"), opts); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				if asText {
					w.Header().Set("Content-Type", "text/plain; charset=utf-8")
					an.WriteText(w)
					return
				}
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				an.WriteJSON(w)
				return
			}
			plan, err := s.Explain(r.Context(), user, mode, q.Get("xpath"), opts)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if asText {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				plan.WriteText(w)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			plan.WriteJSON(w)
		})
		if *recorder > 0 {
			t := time.NewTicker(*recorder)
			go func() {
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
						s.WriteRecorderText(os.Stderr)
					}
				}
			}()
		}
		handler = mux
		shutdown = func(context.Context) error { return s.Close() }
	}

	outer := http.NewServeMux()
	outer.Handle("/", handler)
	outer.HandleFunc("/debug/pprof/", pprof.Index)
	outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
	outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: outer}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dolcli: serving on http://%s (/debug/vars, /metrics, /query, /explain, /debug/queries, /healthz, /debug/pprof/)\n", ln.Addr())

	select {
	case err := <-errc:
		shutdown(context.Background())
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintf(os.Stderr, "dolcli: shutting down (draining up to %s)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "dolcli: http drain: %v\n", err)
	}
	return shutdown(sctx)
}

// accessLogger serializes single-store serve's access-log lines: one JSON
// line per request, each a single Write.
type accessLogger struct {
	mu sync.Mutex
	w  *os.File
}

// log emits one line; a nil logger is a no-op so handlers call it
// unconditionally.
func (l *accessLogger) log(endpoint, user, xpath string, opts securexml.QueryOptions, status int, elapsed time.Duration, qt *securexml.QueryTrace, answers int) {
	if l == nil {
		return
	}
	fp, _ := securexml.QueryFingerprint(xpath, opts)
	line := struct {
		At          string `json:"at"`
		Endpoint    string `json:"endpoint"`
		Subject     string `json:"subject"`
		XPath       string `json:"xpath"`
		Status      int    `json:"status"`
		LatencyUs   int64  `json:"latency_us"`
		Pages       int64  `json:"pages"`
		Answers     int    `json:"answers"`
		Fingerprint string `json:"fingerprint,omitempty"`
	}{
		At:          time.Now().UTC().Format(time.RFC3339Nano),
		Endpoint:    endpoint,
		Subject:     user,
		XPath:       xpath,
		Status:      status,
		LatencyUs:   elapsed.Microseconds(),
		Pages:       qt.PageReads(),
		Answers:     answers,
		Fingerprint: fp,
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// setAccess applies an accessibility update to a persisted store: the
// §3.4 in-place updates, exposed on the command line. Targets come from an
// unrestricted XPath evaluation; by default the whole subtree of each
// match is updated.
func setAccess(args []string, allowed bool) error {
	fs := flag.NewFlagSet("grant/revoke", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	subject := fs.String("subject", "", "subject to update")
	mode := fs.String("mode", "read", "action mode")
	xpath := fs.String("xpath", "", "target selector")
	nodeOnly := fs.Bool("node-only", false, "update only the matched nodes, not their subtrees")
	durability := fs.String("durability", "sync", "commit durability: sync, grouped or async (multi-target updates coalesce their flushes)")
	fs.Parse(args)
	if *storeDir == "" || *subject == "" || *xpath == "" {
		return fmt.Errorf("grant/revoke require -store, -subject and -xpath")
	}
	d, err := parseDurability(*durability)
	if err != nil {
		return err
	}
	s, err := securexml.Open(*storeDir, securexml.StoreOptions{Durability: d})
	if err != nil {
		return err
	}
	defer s.Close()
	targets, err := s.QueryUnrestricted(*xpath)
	if err != nil {
		return err
	}
	for _, m := range targets {
		if err := s.SetAccess(*subject, *mode, m.Node, allowed, !*nodeOnly); err != nil {
			return err
		}
	}
	if err := s.Save(*storeDir); err != nil {
		return err
	}
	verb := "revoked"
	if allowed {
		verb = "granted"
	}
	fmt.Fprintf(os.Stderr, "%s %s/%s on %d targets\n", verb, *subject, *mode, len(targets))
	return nil
}

// parseDurability maps the -durability flag onto securexml's modes. Save
// (and Close) act as durability barriers, so grouped and async commits are
// always on disk before the command exits.
func parseDurability(s string) (securexml.Durability, error) {
	switch s {
	case "sync":
		return securexml.DurabilitySync, nil
	case "grouped":
		return securexml.DurabilityGrouped, nil
	case "async":
		return securexml.DurabilityAsync, nil
	default:
		return 0, fmt.Errorf("unknown durability %q (want sync, grouped or async)", s)
	}
}

// export writes the user's authorized (pruned-subtree) view as XML.
func export(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	user := fs.String("user", "", "user whose view to export")
	mode := fs.String("mode", "read", "action mode")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *storeDir == "" || *user == "" {
		return fmt.Errorf("export requires -store and -user")
	}
	s, err := securexml.Open(*storeDir, securexml.StoreOptions{})
	if err != nil {
		return err
	}
	defer s.Close()
	var w *os.File = os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	return s.ExportVisible(*user, *mode, w)
}

func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("stats requires -store")
	}
	s, err := securexml.Open(*storeDir, securexml.StoreOptions{})
	if err != nil {
		return err
	}
	defer s.Close()
	st, err := s.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("nodes:            %d\n", st.Nodes)
	fmt.Printf("structure pages:  %d\n", st.StructurePages)
	fmt.Printf("transitions:      %d (1 per %.1f nodes)\n", st.Transitions, float64(st.Nodes)/float64(st.Transitions))
	fmt.Printf("codebook entries: %d (%d bytes)\n", st.CodebookEntries, st.CodebookBytes)
	fmt.Printf("directory bytes:  %d\n", st.DirectoryBytes)
	fmt.Printf("modes:            %s\n", strings.Join(s.Modes(), ", "))
	fmt.Printf("subjects:         %d\n", len(s.Subjects()))
	return nil
}
