// Command xmlgen emits a deterministic XMark-like auction document.
//
// Usage:
//
//	xmlgen [-nodes N] [-seed S] [-o file]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dolxml/internal/xmark"
)

func main() {
	nodes := flag.Int("nodes", 100000, "approximate node count")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := xmark.Generate(xmark.Scaled(*seed, *nodes))
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := doc.WriteXML(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %d nodes\n", doc.Len())
}
