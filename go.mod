module dolxml

go 1.22
