package securexml

import (
	"reflect"
	"sync"
	"testing"
)

// A sealed Store must serve the same query to many goroutines at once and
// give each of them the same answer (run under -race in CI).
func TestConcurrentQueries(t *testing.T) {
	s := hospitalStore(t, StoreOptions{PageSize: 256})
	defer s.Close()

	type q struct{ user, mode, expr string }
	queries := []q{
		{"dave", "read", "//patient"},
		{"dave", "read", "//billing/amount"},
		{"betty", "read", "//billing/amount"},
		{"alice", "read", "//patient/name"},
	}
	want := make([][]Match, len(queries))
	for i, qu := range queries {
		var err error
		want[i], err = s.Query(qu.user, qu.mode, qu.expr)
		if err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(queries)
				got, err := s.Query(queries[i].user, queries[i].mode, queries[i].expr)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("goroutine %d: %s as %s = %v, want %v",
						g, queries[i].expr, queries[i].user, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Queries racing with both secure semantics and an unrestricted reader
// must all stay consistent on one shared store.
func TestConcurrentMixedSemantics(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()

	wantCho, err := s.Query("dave", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	wantGB, err := s.QueryPruned("dave", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	wantAll, err := s.QueryUnrestricted("//patient")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 15; r++ {
				switch g % 3 {
				case 0:
					got, err := s.Query("dave", "read", "//patient")
					if err != nil || !reflect.DeepEqual(got, wantCho) {
						t.Errorf("bindings query diverged: %v %v", got, err)
						return
					}
				case 1:
					got, err := s.QueryPruned("dave", "read", "//patient")
					if err != nil || !reflect.DeepEqual(got, wantGB) {
						t.Errorf("pruned query diverged: %v %v", got, err)
						return
					}
				default:
					got, err := s.QueryUnrestricted("//patient")
					if err != nil || !reflect.DeepEqual(got, wantAll) {
						t.Errorf("unrestricted query diverged: %v %v", got, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
