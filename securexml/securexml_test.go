package securexml

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

const hospitalXML = `<hospital>
  <ward name="A">
    <patient id="p1"><name>Ann</name><diagnosis>flu</diagnosis><billing><amount>100</amount></billing></patient>
    <patient id="p2"><name>Bob</name><diagnosis>cold</diagnosis><billing><amount>50</amount></billing></patient>
  </ward>
  <ward name="B">
    <patient id="p3"><name>Cid</name><diagnosis>cough</diagnosis><billing><amount>75</amount></billing></patient>
  </ward>
  <pharmacy><drug>aspirin</drug></pharmacy>
</hospital>`

// hospitalStore builds the running example: doctors read everything
// medical, billing staff read billing, nurse alice reads ward A only.
func hospitalStore(t testing.TB, opts StoreOptions) *Store {
	t.Helper()
	b := NewBuilder().
		LoadXMLString(hospitalXML).
		AddGroup("doctors").
		AddGroup("billing-staff").
		AddUser("alice").
		AddUser("dave").
		AddUser("betty").
		AddMember("doctors", "dave").
		AddMember("billing-staff", "betty").
		Grant("doctors", "read", "/hospital").
		Revoke("doctors", "read", "//billing").
		Grant("billing-staff", "read", "//billing").
		Grant("billing-staff", "read", "/hospital"). // root context
		RevokeLocal("billing-staff", "read", "//patient").
		Revoke("billing-staff", "read", "//diagnosis").
		Grant("alice", "read", `/hospital/ward[@name='A']`).
		Grant("doctors", "write", "//diagnosis")
	s, err := b.Seal(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSealAndBasicQueries(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()

	all, err := s.QueryUnrestricted("//patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("unrestricted patients = %d", len(all))
	}

	// Dave (doctor) sees all patients but no billing.
	pats, err := s.Query("dave", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 3 {
		t.Fatalf("dave sees %d patients", len(pats))
	}
	bills, err := s.Query("dave", "read", "//billing/amount")
	if err != nil {
		t.Fatal(err)
	}
	if len(bills) != 0 {
		t.Fatalf("dave sees %d billing amounts", len(bills))
	}

	// Betty (billing) sees amounts but no diagnoses.
	bills, err = s.Query("betty", "read", "//billing/amount")
	if err != nil {
		t.Fatal(err)
	}
	if len(bills) != 3 {
		t.Fatalf("betty sees %d amounts", len(bills))
	}
	if bills[0].Tag != "amount" || bills[0].Value != "100" {
		t.Fatalf("first amount = %+v", bills[0])
	}
	diags, _ := s.Query("betty", "read", "//diagnosis")
	if len(diags) != 0 {
		t.Fatalf("betty sees %d diagnoses", len(diags))
	}

	// Alice sees only ward A patients.
	pats, err = s.Query("alice", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 {
		t.Fatalf("alice sees %d patients", len(pats))
	}

	// Write mode is separate: dave can "write" diagnoses, alice cannot.
	w, _ := s.Query("dave", "write", "//diagnosis")
	if len(w) != 3 {
		t.Fatalf("dave writes %d diagnoses", len(w))
	}
	w, _ = s.Query("alice", "write", "//diagnosis")
	if len(w) != 0 {
		t.Fatalf("alice writes %d diagnoses", len(w))
	}
}

func TestQueryPrunedSemantics(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	// Betty's view: patients themselves are revoked locally, so under the
	// bindings semantics amounts are reachable, and under pruned
	// semantics... the local (non-cascading) revoke keeps descendants
	// accessible but the patient node itself blocks root paths.
	bind, err := s.Query("betty", "read", "//amount")
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := s.QueryPruned("betty", "read", "//amount")
	if err != nil {
		t.Fatal(err)
	}
	if len(bind) != 3 {
		t.Fatalf("bindings amounts = %d", len(bind))
	}
	if len(pruned) != 0 {
		t.Fatalf("pruned amounts = %d; inaccessible patient on path should block", len(pruned))
	}
}

func TestErrorsSurface(t *testing.T) {
	if _, err := NewBuilder().Seal(StoreOptions{}); err == nil {
		t.Fatal("Seal without document should fail")
	}
	if _, err := NewBuilder().LoadXMLString("<broken").Seal(StoreOptions{}); err == nil {
		t.Fatal("bad XML should fail")
	}
	b := NewBuilder().LoadXMLString("<a/>").Grant("ghost", "read", "/a")
	if _, err := b.Seal(StoreOptions{}); err == nil {
		t.Fatal("rule with unknown subject should fail")
	}
	b2 := NewBuilder().LoadXMLString("<a/>").AddUser("u").Grant("u", "nosuchmode", "/a")
	if _, err := b2.Seal(StoreOptions{}); err == nil {
		t.Fatal("rule with unknown mode should fail")
	}

	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	if _, err := s.Query("ghost", "read", "//patient"); err == nil {
		t.Fatal("unknown user should fail")
	}
	if _, err := s.Query("dave", "nosuch", "//patient"); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if _, err := s.Query("dave", "read", "not an xpath"); err == nil {
		t.Fatal("bad xpath should fail")
	}
}

func TestAccessibleAndUserAccessible(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	pats, _ := s.QueryUnrestricted("//patient")
	p := pats[0].Node
	// dave's own subject has no direct rights; only via the doctors group.
	own, err := s.Accessible("dave", "read", p)
	if err != nil {
		t.Fatal(err)
	}
	if own {
		t.Fatal("dave's own subject should have no direct rights")
	}
	eff, err := s.UserAccessible("dave", "read", p)
	if err != nil {
		t.Fatal(err)
	}
	if !eff {
		t.Fatal("dave should access patients via the doctors group")
	}
}

func TestSetAccessUpdates(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	pats, _ := s.QueryUnrestricted("//patient")
	target := pats[2].Node // ward B patient
	ok, _ := s.UserAccessible("alice", "read", target)
	if ok {
		t.Fatal("alice should not see ward B yet")
	}
	if err := s.SetAccess("alice", "read", target, true, true); err != nil {
		t.Fatal(err)
	}
	ok, _ = s.UserAccessible("alice", "read", target)
	if !ok {
		t.Fatal("grant did not take effect")
	}
	got, _ := s.Query("alice", "read", "//patient")
	if len(got) != 3 {
		t.Fatalf("alice now sees %d patients", len(got))
	}
	// Revoke a single node.
	if err := s.SetAccess("alice", "read", target, false, false); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Query("alice", "read", "//patient")
	if len(got) != 2 {
		t.Fatalf("after node revoke alice sees %d patients", len(got))
	}
}

func TestSubjectLifecycle(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	if err := s.AddUserLike("dave2", "dave"); err != nil {
		t.Fatal(err)
	}
	// dave2 clones dave's *own* (empty) rights, not his group rights.
	pats, _ := s.Query("dave2", "read", "//patient")
	if len(pats) != 0 {
		t.Fatalf("dave2 sees %d patients without membership", len(pats))
	}
	if err := s.AddMember("doctors", "dave2"); err != nil {
		t.Fatal(err)
	}
	pats, _ = s.Query("dave2", "read", "//patient")
	if len(pats) != 3 {
		t.Fatalf("dave2 sees %d patients with doctors membership", len(pats))
	}
	if err := s.AddUser("newbie"); err != nil {
		t.Fatal(err)
	}
	pats, _ = s.Query("newbie", "read", "//patient")
	if len(pats) != 0 {
		t.Fatal("fresh user should see nothing")
	}
	if err := s.AddGroup("auditors"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddUser("newbie"); err == nil {
		t.Fatal("duplicate user should fail")
	}
}

func TestStructuralUpdates(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	wards, _ := s.QueryUnrestricted("/hospital/ward")
	wardA := wards[0].Node

	// Insert a new patient into ward A; it inherits ward A's ACL, so
	// alice can see it.
	if err := s.InsertXML(wardA, InvalidNode,
		`<patient id="p9"><name>Zoe</name><diagnosis>ok</diagnosis></patient>`); err != nil {
		t.Fatal(err)
	}
	pats, err := s.Query("alice", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 3 {
		t.Fatalf("alice sees %d patients after insert", len(pats))
	}
	names, _ := s.Query("alice", "read", "//patient/name")
	found := false
	for _, m := range names {
		if m.Value == "Zoe" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted patient not queryable: %+v", names)
	}

	// Delete the new patient again.
	if err := s.Delete(pats[0].Node); err != nil {
		t.Fatal(err)
	}
	pats, _ = s.Query("alice", "read", "//patient")
	if len(pats) != 2 {
		t.Fatalf("alice sees %d patients after delete", len(pats))
	}

	// Move a patient from ward A to ward B: alice loses nothing she had
	// (ACLs move with the subtree).
	pats, _ = s.Query("alice", "read", "//patient")
	moved := pats[0].Node
	wards, _ = s.QueryUnrestricted("/hospital/ward")
	if err := s.Move(moved, wards[1].Node, InvalidNode); err != nil {
		t.Fatal(err)
	}
	pats, _ = s.Query("alice", "read", "//patient")
	if len(pats) != 2 {
		t.Fatalf("alice sees %d patients after move (ACL should travel)", len(pats))
	}
}

func TestStatsAndMetadata(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 || st.StructurePages == 0 || st.Transitions == 0 || st.CodebookEntries == 0 {
		t.Fatalf("stats look empty: %+v", st)
	}
	modes := s.Modes()
	if len(modes) != 2 || modes[0] != "read" {
		t.Fatalf("modes = %v", modes)
	}
	subs := s.Subjects()
	if len(subs) != 5 {
		t.Fatalf("subjects = %v", subs)
	}
	if v, err := s.Value(0); err != nil || v != "" {
		t.Fatalf("root value = %q (%v)", v, err)
	}
	if tag, err := s.Tag(0); err != nil || tag != "hospital" {
		t.Fatalf("root tag = %q (%v)", tag, err)
	}
}

func TestSaveAndOpen(t *testing.T) {
	dir := t.TempDir()
	s := hospitalStore(t, StoreOptions{})
	// Mutate before saving so persisted state includes updates.
	pats, _ := s.QueryUnrestricted("//patient")
	if err := s.SetAccess("alice", "read", pats[2].Node, true, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Query("alice", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("reopened store: alice sees %d patients, want 3", len(got))
	}
	bills, _ := re.Query("betty", "read", "//billing/amount")
	if len(bills) != 3 {
		t.Fatalf("reopened store: betty sees %d amounts", len(bills))
	}
	// Values survive.
	if bills[0].Value != "100" {
		t.Fatalf("value lost: %+v", bills[0])
	}
}

func TestSealFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s := hospitalStore(t, StoreOptions{Path: path})
	defer s.Close()
	pats, err := s.Query("dave", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 3 {
		t.Fatalf("file-backed store: %d patients", len(pats))
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir(), StoreOptions{}); err == nil {
		t.Fatal("open of empty dir should fail")
	}
}

func TestBuilderChainErrors(t *testing.T) {
	b := NewBuilder().AddUser("u").AddUser("u") // duplicate
	if _, err := b.LoadXMLString("<a/>").Seal(StoreOptions{}); err == nil {
		t.Fatal("duplicate user should surface at Seal")
	}
	b2 := NewBuilder().LoadXMLString("<a/>").AddMember("nogroup", "nouser")
	if _, err := b2.Seal(StoreOptions{}); err == nil {
		t.Fatal("bad membership should surface at Seal")
	}
}

func TestAttributePredicate(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	// Attribute nodes are child nodes tagged @name; the alice rule used
	// /hospital/ward[@name='A'].
	ws, err := s.QueryUnrestricted(`/hospital/ward[@name='A']`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 {
		t.Fatalf("ward A matches = %d", len(ws))
	}
}

func TestModesIsolation(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	// Granting read must not grant write: check via the raw matrix-free
	// interface.
	pats, _ := s.QueryUnrestricted("//patient")
	rd, _ := s.UserAccessible("alice", "read", pats[0].Node)
	wr, _ := s.UserAccessible("alice", "write", pats[0].Node)
	if !rd || wr {
		t.Fatalf("mode isolation broken: read=%v write=%v", rd, wr)
	}
}

func TestLargeDocumentThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("large facade test in short mode")
	}
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 2000; i++ {
		sb.WriteString("<book><title>t</title><secret>s</secret></book>")
	}
	sb.WriteString("</lib>")
	s, err := NewBuilder().
		LoadXMLString(sb.String()).
		AddUser("reader").
		Grant("reader", "read", "/lib").
		Revoke("reader", "read", "//secret").
		Seal(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	books, err := s.Query("reader", "read", "//book[title]")
	if err != nil {
		t.Fatal(err)
	}
	if len(books) != 2000 {
		t.Fatalf("reader sees %d books", len(books))
	}
	secrets, _ := s.Query("reader", "read", "//secret")
	if len(secrets) != 0 {
		t.Fatalf("reader sees %d secrets", len(secrets))
	}
}

// Property: across random documents, policies and queries, the facade
// obeys the containment laws — pruned ⊆ bindings ⊆ unrestricted — and
// results survive Save/Open byte-for-byte.
func TestFacadeContainmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tags := []string{"a", "b", "c", "d"}
	queries := []string{"//a", "//b[c]", "/r/a", "//a//c", "//d", "/r/*[a]"}
	for trial := 0; trial < 25; trial++ {
		// Random document.
		var sb strings.Builder
		var build func(depth int)
		nodes := 0
		build = func(depth int) {
			tag := tags[rng.Intn(len(tags))]
			sb.WriteString("<" + tag + ">")
			nodes++
			if depth < 4 {
				for k := 0; k < rng.Intn(4); k++ {
					build(depth + 1)
				}
			}
			sb.WriteString("</" + tag + ">")
		}
		sb.WriteString("<r>")
		nodes++
		for k := 0; k < 3+rng.Intn(4); k++ {
			build(1)
		}
		sb.WriteString("</r>")

		b := NewBuilder().LoadXMLString(sb.String()).AddUser("u")
		// Random rules over random tag paths.
		for k := 0; k < 1+rng.Intn(5); k++ {
			xp := "//" + tags[rng.Intn(len(tags))]
			if rng.Intn(2) == 0 {
				b.Grant("u", "read", xp)
			} else {
				b.Revoke("u", "read", xp)
			}
		}
		if rng.Intn(2) == 0 {
			b.Grant("u", "read", "/r")
		}
		s, err := b.Seal(StoreOptions{PageSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			admin, err := s.QueryUnrestricted(q)
			if err != nil {
				t.Fatal(err)
			}
			bind, err := s.Query("u", "read", q)
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := s.QueryPruned("u", "read", q)
			if err != nil {
				t.Fatal(err)
			}
			adminSet := map[NodeID]bool{}
			for _, m := range admin {
				adminSet[m.Node] = true
			}
			bindSet := map[NodeID]bool{}
			for _, m := range bind {
				if !adminSet[m.Node] {
					t.Fatalf("trial %d %s: secure answer %d not in unrestricted set", trial, q, m.Node)
				}
				bindSet[m.Node] = true
			}
			for _, m := range pruned {
				if !bindSet[m.Node] {
					t.Fatalf("trial %d %s: pruned answer %d not in bindings set", trial, q, m.Node)
				}
			}
		}
		s.Close()
	}
}

// Concurrent queries against occasional updates must be linearizable-ish:
// no panics, no errors, and every answer set is one the store could
// produce. Run with -race to exercise the locking.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	done := make(chan error, 8)
	for g := 0; g < 6; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := s.Query("dave", "read", "//patient[name]"); err != nil {
					done <- err
					return
				}
				if _, err := s.QueryPruned("betty", "read", "//amount"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 2; g++ {
		g := g
		go func() {
			for i := 0; i < 20; i++ {
				pats, err := s.QueryUnrestricted("//patient")
				if err != nil || len(pats) == 0 {
					done <- err
					return
				}
				target := pats[(i+g)%len(pats)].Node
				if err := s.SetAccess("alice", "read", target, i%2 == 0, true); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for k := 0; k < 8; k++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestExportVisible(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()

	// Dave (doctors): everything except billing subtrees.
	var out strings.Builder
	if err := s.ExportVisible("dave", "read", &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"<name>Ann</name>", "<name>Cid</name>", "<drug>aspirin</drug>", `ward name="A"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("dave export missing %q:\n%s", want, got)
		}
	}
	for _, deny := range []string{"billing", "amount", "100"} {
		if strings.Contains(got, deny) {
			t.Fatalf("dave export leaked %q:\n%s", deny, got)
		}
	}
	// The exported view must be well-formed XML.
	if _, err := NewBuilder().LoadXMLString(got).AddUser("x").Seal(StoreOptions{}); err != nil {
		t.Fatalf("export does not reparse: %v\n%s", err, got)
	}

	// Alice's pruned view is empty: the hospital root is not granted to
	// her, and dissemination uses the pruned-subtree semantics.
	out.Reset()
	if err := s.ExportVisible("alice", "read", &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Fatalf("alice export should be empty (inaccessible root), got %q", out.String())
	}

	// Betty: patients themselves are locally revoked, so patient subtrees
	// (including the billing she can read in place) vanish from the
	// disseminated view; the pharmacy stays.
	out.Reset()
	if err := s.ExportVisible("betty", "read", &out); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if strings.Contains(got, "patient") || strings.Contains(got, "amount") {
		t.Fatalf("betty export leaked patient content:\n%s", got)
	}
	if !strings.Contains(got, "<drug>aspirin</drug>") {
		t.Fatalf("betty export missing pharmacy:\n%s", got)
	}
}

func TestExportVisibleDeniedRoot(t *testing.T) {
	s, err := NewBuilder().
		LoadXMLString("<a><b/></a>").
		AddUser("u").
		Seal(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var out strings.Builder
	if err := s.ExportVisible("u", "read", &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Fatalf("denied root should export nothing, got %q", out.String())
	}
}

// countElems counts start tags of the given name, with or without
// attributes.
func countElems(doc, tag string) int {
	return strings.Count(doc, "<"+tag+">") + strings.Count(doc, "<"+tag+" ")
}

// Property: the export contains exactly as many elements of each tag as
// QueryPruned returns for //tag.
func TestExportVisibleMatchesPrunedView(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	for _, user := range []string{"dave", "betty", "alice"} {
		var out strings.Builder
		if err := s.ExportVisible(user, "read", &out); err != nil {
			t.Fatal(err)
		}
		got := out.String()
		for _, tag := range []string{"ward", "patient", "diagnosis", "billing", "amount", "drug"} {
			pruned, err := s.QueryPruned(user, "read", "//"+tag)
			if err != nil {
				t.Fatal(err)
			}
			if occ := countElems(got, tag); occ != len(pruned) {
				t.Fatalf("user %s tag %s: export has %d, pruned query %d\n%s",
					user, tag, occ, len(pruned), got)
			}
		}
	}
}

func TestBuilderLocalRulesAndDefaults(t *testing.T) {
	s, err := NewBuilder().
		LoadXMLString("<a><b><c/></b></a>").
		AddUser("u").
		AddUser("v").
		PermitByDefault().
		RevokeLocal("u", "read", "/a/b").
		GrantLocal("u", "read", "//c"). // no-op on top of default, exercises the path
		Seal(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// v has no rules: open world grants everything.
	ms, err := s.Query("v", "read", "//c")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("open-world user sees %d", len(ms))
	}
	// u: b itself locally revoked, c stays accessible.
	ok, _ := s.UserAccessible("u", "read", 1)
	if ok {
		t.Fatal("local revoke failed")
	}
	ok, _ = s.UserAccessible("u", "read", 2)
	if !ok {
		t.Fatal("local revoke must not cascade")
	}
	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
}

func TestStoreVacuum(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()
	// Make some updates, then vacuum; queries must be unchanged.
	pats, _ := s.QueryUnrestricted("//patient")
	for i, p := range pats {
		if err := s.SetAccess("alice", "read", p.Node, i%2 == 0, true); err != nil {
			t.Fatal(err)
		}
	}
	before, err := s.Query("alice", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Vacuum(); err != nil {
		t.Fatal(err)
	}
	after, err := s.Query("alice", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("Vacuum changed results: %d -> %d", len(before), len(after))
	}
}
