package securexml

import (
	"encoding/xml"
	"fmt"
	"io"

	"dolxml/internal/nok"
)

// ExportVisible serializes the document fragment the user may see under
// the given mode — the pruned-subtree view (an element appears exactly
// when it and all its ancestors are accessible) — directly from the
// physical store in one document-order pass. Attribute nodes are emitted
// as attributes of their (visible) parents when accessible and omitted
// when not, so the authorized view hides individual attributes too.
//
// The output is the dissemination primitive of the paper's conclusion:
// the materialized secure view for one subject.
func (s *Store) ExportVisible(user, mode string, w io.Writer) error {
	r, err := s.acquire()
	if err != nil {
		return err
	}
	defer s.release(r)
	sn := r.sn
	view, err := s.viewAt(sn, user, mode)
	if err != nil {
		return err
	}

	st := sn.st
	vs := st.Values()
	cb := sn.ss.Codebook()

	var stack []exportFrame
	allVisible := true // whether every frame on the stack is visible

	// completeOpen finishes the top frame's start tag before nested
	// element content is written.
	completeOpen := func() error {
		if len(stack) == 0 {
			return nil
		}
		top := &stack[len(stack)-1]
		if !top.visible || !top.openPending {
			return nil
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		if top.textPending != "" {
			if err := xml.EscapeText(w, []byte(top.textPending)); err != nil {
				return err
			}
			top.textPending = ""
		}
		top.openPending = false
		return nil
	}

	var walkErr error
	err = st.WalkSubtree(0, func(ni nok.NodeInfo) bool {
		if walkErr != nil {
			return false
		}
		tag := st.TagName(ni.Entry.Tag)
		accessible := cb.AccessibleAny(ni.Code, view.Effective())
		visible := allVisible && accessible

		var value string
		if vs != nil {
			value, walkErr = vs.Value(ni.ID)
			if walkErr != nil {
				return false
			}
		}

		if len(tag) > 0 && tag[0] == '@' {
			// Attribute node: attach to the parent's pending start tag.
			if visible && len(stack) > 0 {
				top := &stack[len(stack)-1]
				if top.visible && top.openPending {
					if _, err := fmt.Fprintf(w, " %s=%q", tag[1:], value); err != nil {
						walkErr = err
						return false
					}
				}
			}
			// Attribute nodes are leaves; their close is handled below.
		} else {
			if walkErr = completeOpen(); walkErr != nil {
				return false
			}
			if visible {
				if _, err := fmt.Fprintf(w, "<%s", tag); err != nil {
					walkErr = err
					return false
				}
			}
			stack = append(stack, exportFrame{tag: tag, visible: visible, openPending: visible, textPending: value})
			if !visible {
				allVisible = false
			}
		}

		// Handle the subtrees closing after this node. Attribute nodes
		// close themselves (they were never pushed), so the first close
		// of an attribute entry is a no-op on the stack.
		closes := ni.Entry.CloseCount
		if len(tag) > 0 && tag[0] == '@' {
			closes--
		}
		for k := 0; k < closes; k++ {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.visible {
				if top.openPending {
					if _, err := io.WriteString(w, ">"); err != nil {
						walkErr = err
						return false
					}
					if top.textPending != "" {
						if err := xml.EscapeText(w, []byte(top.textPending)); err != nil {
							walkErr = err
							return false
						}
					}
				}
				if _, err := fmt.Fprintf(w, "</%s>", top.tag); err != nil {
					walkErr = err
					return false
				}
			}
			allVisible = frameAllVisible(stack)
		}
		return true
	})
	if err != nil {
		return err
	}
	return walkErr
}

// exportFrame tracks one open element during ExportVisible's walk.
type exportFrame struct {
	tag     string
	visible bool
	// openPending means "<tag" has been written but not yet ">".
	openPending bool
	// textPending is the element's own text, written right after the
	// open tag is completed.
	textPending string
}

func frameAllVisible(stack []exportFrame) bool {
	for _, f := range stack {
		if !f.visible {
			return false
		}
	}
	return true
}
