package securexml

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"time"

	"dolxml/internal/acl"
	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/query"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// snapshot is one published, immutable state of the store: the frozen
// structure store and secure wrapper, the subject directory in force, the
// derived indexes, and the page-table version that keeps the snapshot's
// pages from being overwritten while anyone holds it. Updates build the
// next snapshot off to the side and publish it with one atomic pointer
// swap; readers load-and-pin it without ever touching Store.mu.
type snapshot struct {
	seq uint64
	ver *storage.Version
	st  *nok.Store
	ss  *dol.SecureStore
	dir *acl.Directory
	idx *indexState
}

// indexState holds the tag and value indexes derived from one snapshot's
// structure. It is built lazily, off every lock, on the first query that
// needs it — concurrent first queries share one build through the Once —
// and is reused across snapshots whose structure is unchanged (ACL-only
// updates never move an extent, so the postings stay valid; pages are
// resolved through each snapshot's own directory at evaluation time).
type indexState struct {
	pageSize int
	once     sync.Once
	err      error
	index    *btree.Tree
	vindex   *btree.ValueTree
	// masks memoizes compiled query shapes (skip masks + path routing)
	// across the snapshots sharing this index state. Entries are stamped
	// with the publishing sequence and hit only on an exact match, so an
	// ACL-only commit (which shares the indexState but shadow-pages the
	// block directory) still recompiles.
	masks *query.MaskCache
}

func newIndexState(pageSize int, masks *query.MaskCache) *indexState {
	return &indexState{pageSize: pageSize, masks: masks}
}

// ensure builds the indexes from st on first use and returns the build
// outcome (memoized; a failed build fails every query of this snapshot
// chain until a structural update publishes a fresh indexState).
func (ix *indexState) ensure(st *nok.Store) error {
	ix.once.Do(func() { ix.err = ix.build(st) })
	return ix.err
}

// build constructs the tag index (and value index when values are stored)
// from the frozen store. The index pages live in their own in-memory pool,
// so builds touch the shared buffer pool only to read structure blocks.
func (ix *indexState) build(st *nok.Store) error {
	pool := storage.NewBufferPool(storage.NewMemPager(ix.pageSize), 1<<30/ix.pageSize)
	t, err := btree.New(pool)
	if err != nil {
		return err
	}
	var vt *btree.ValueTree
	vs := st.Values()
	if vs != nil {
		vt, err = btree.NewValueTree(pool)
		if err != nil {
			return err
		}
	}
	var indexErr error
	err = st.ForEachExtent(func(n, end xmltree.NodeID, level int, tag int32) {
		if indexErr != nil {
			return
		}
		p := btree.Posting{Node: n, End: end, Level: uint16(level)}
		if err := t.Insert(tag, p); err != nil {
			indexErr = err
			return
		}
		if vt == nil {
			return
		}
		v, err := vs.Value(n)
		if err != nil {
			indexErr = err
			return
		}
		if v != "" {
			if err := vt.Insert(tag, v, p); err != nil {
				indexErr = err
			}
		}
	})
	if err == nil {
		err = indexErr
	}
	if err != nil {
		return err
	}
	ix.index = t
	ix.vindex = vt
	return nil
}

// snapRef is one pinned hold of a snapshot, stamped for pin-duration
// accounting. Every acquire must be paired with exactly one release.
type snapRef struct {
	sn *snapshot
	at time.Time
}

// failedNow reports the poisoned state without any lock: the explicit flag
// (an abort discarded buffered writes) or a broken WAL (a group flush died,
// so the in-memory state of every batch sealed since is ahead of what disk
// will ever hold).
func (s *Store) failedNow() bool {
	return s.failed.Load() || (s.wp != nil && s.wp.Broken() != nil)
}

// acquire pins the current snapshot for one reader. The pin is the only
// synchronization a query needs: no store lock is taken, so readers never
// stall an updater and vice versa. The TryPin loop covers the benign race
// where a publish retires the version between the load and the pin.
//
// A store that fails while a snapshot is pinned keeps serving that
// snapshot correctly — an aborted transaction only ever wrote fresh or
// quarantine-cleared pages, never a page a published snapshot references —
// but new acquisitions fail. This closes the pre-snapshot TOCTOU window
// where a query could start between a poisoning update's lock release and
// the query's own lock acquisition and then read half-diverged state.
func (s *Store) acquire() (snapRef, error) {
	if s.failedNow() {
		return snapRef{}, errStoreFailed
	}
	for {
		sn := s.cur.Load()
		if sn.ver.TryPin() {
			s.snapPins.Inc()
			return snapRef{sn: sn, at: time.Now()}, nil
		}
	}
}

// acquireFor resolves the snapshot a query runs against: the caller's
// explicit repeatable-read pin when opts carries one, else the current
// snapshot. Either way the query holds its own pin for its whole drain.
func (s *Store) acquireFor(opts QueryOptions) (snapRef, error) {
	if opts.Snapshot == nil {
		return s.acquire()
	}
	return opts.Snapshot.ref()
}

// release drops one pin, records the hold duration and fires the slow-pin
// log when the hold exceeded StoreOptions.SlowPinThreshold — long pins
// delay page reclamation the way slow queries delay answers, so they get
// the same reporting treatment.
func (s *Store) release(r snapRef) {
	if r.sn == nil {
		return
	}
	held := time.Since(r.at)
	r.sn.ver.Unpin()
	s.snapUnpins.Inc()
	s.snapPinUs.Observe(held.Microseconds())
	if slow := s.opts.SlowPinThreshold; slow > 0 && held >= slow {
		w := s.opts.SlowPinLog
		if w == nil {
			w = os.Stderr
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "securexml: slow snapshot pin (%v >= %v): seq=%d live_versions=%d\n",
			held.Round(time.Microsecond), slow, r.sn.seq, s.vt.LiveVersions())
		s.slowMu.Lock()
		w.Write(buf.Bytes())
		s.slowMu.Unlock()
	}
}

// publish freezes the live state into the next snapshot and swaps it in.
// Called with s.mu held, after the update's batch sealed successfully (the
// effects are thereby visible to new queries in commit order). structural
// reports whether the update changed the document structure; ACL- and
// directory-only updates keep sharing the previous snapshot's indexes.
//
// The pages the update released are handed to the version table tagged
// with the new version, so they become reusable only when every older
// snapshot has retired.
func (s *Store) publish(structural bool) {
	st := s.ss.Store()
	prev := s.cur.Load()
	ver := s.vt.Publish(st.TakeRetired())
	// The snapshot holds its own reference beyond the table's, so the
	// previous snapshot stays pinnable until the pointer swap below.
	ver.TryPin()
	frozen := st.Freeze()
	sn := &snapshot{
		seq: ver.Seq(),
		ver: ver,
		st:  frozen,
		ss:  s.ss.Freeze(frozen),
		dir: s.dir,
	}
	s.dirShared = true
	if structural || prev == nil {
		sn.idx = newIndexState(s.opts.PageSize, query.NewMaskCache(s.maskHits, s.maskMisses))
	} else {
		sn.idx = prev.idx
	}
	s.cur.Store(sn)
	if prev != nil {
		prev.ver.Unpin()
	}
}

// initSnapshot installs the version table, the deferred page-reuse gate and
// the first snapshot. Called once from Seal and Open, before the store is
// shared.
func (s *Store) initSnapshot() {
	s.vt = storage.NewVersionTable()
	st := s.ss.Store()
	st.SetPageReuseGate(s.vt)
	ver := s.vt.Current()
	ver.TryPin()
	frozen := st.Freeze()
	s.dirShared = true
	s.cur.Store(&snapshot{
		seq: ver.Seq(),
		ver: ver,
		st:  frozen,
		ss:  s.ss.Freeze(frozen),
		dir: s.dir,
		idx: newIndexState(s.opts.PageSize, query.NewMaskCache(s.maskHits, s.maskMisses)),
	})
}

// mutableDir returns the live directory, cloning it first when it is still
// shared with a published snapshot. Callers mutate the returned directory
// under s.mu.
func (s *Store) mutableDir() *acl.Directory {
	if s.dirShared {
		s.dir = s.dir.Clone()
		s.dirShared = false
	}
	return s.dir
}

// evaluatorAt builds the query evaluator over one snapshot's frozen store
// and indexes; the caller must have ensured the snapshot's indexState.
func evaluatorAt(sn *snapshot) *query.Evaluator {
	return query.NewEvaluatorAt(query.Snapshot{
		Store:  sn.st,
		Index:  sn.idx.index,
		Values: sn.idx.vindex,
		Masks:  sn.idx.masks,
		Seq:    sn.seq,
	})
}

// Snapshot is a pinned, repeatable-read handle on one committed state of
// the store. Every query carrying it (QueryOptions.Snapshot) evaluates
// against exactly that state, byte-identically, regardless of concurrent
// updates. Close releases the pin; holding a snapshot open keeps the pages
// of its version from being reclaimed, so close it when done.
type Snapshot struct {
	s      *Store
	base   snapRef
	mu     sync.Mutex
	closed bool
}

// Snapshot pins the store's current committed state and returns the
// repeatable-read handle. The handle is valid until Close, even across
// concurrent updates or a store failure (a failed store stops admitting
// new snapshots but keeps serving pinned ones).
func (s *Store) Snapshot() (*Snapshot, error) {
	r, err := s.acquire()
	if err != nil {
		return nil, err
	}
	return &Snapshot{s: s, base: r}, nil
}

// Seq returns the snapshot's commit sequence number (1 for the sealed
// state, +1 per committed update).
func (sp *Snapshot) Seq() uint64 { return sp.base.sn.seq }

// ref takes one additional pin on the snapshot for a single query's
// lifetime, so a racing Close never invalidates an in-flight query.
func (sp *Snapshot) ref() (snapRef, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return snapRef{}, fmt.Errorf("securexml: snapshot already closed")
	}
	// The handle's own pin keeps the refcount positive, so this cannot
	// fail.
	sp.base.sn.ver.TryPin()
	sp.s.snapPins.Inc()
	return snapRef{sn: sp.base.sn, at: time.Now()}, nil
}

// Close releases the snapshot's pin, allowing its version (and the pages
// only it still references) to be reclaimed. Idempotent.
func (sp *Snapshot) Close() error {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return nil
	}
	sp.closed = true
	sp.mu.Unlock()
	sp.s.release(sp.base)
	return nil
}
