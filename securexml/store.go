package securexml

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dolxml/internal/acl"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/query"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// StoreOptions configure the physical representation.
type StoreOptions struct {
	// Path, when set, backs the store with a page file on disk (required
	// for Save); empty keeps the pages in memory.
	Path string
	// PageSize is the block size in bytes (default 4096, the paper's).
	PageSize int
	// PoolPages bounds the buffer pool (default 4096 frames).
	PoolPages int
	// FillPercent leaves slack in structure blocks for in-place updates
	// (default 90).
	FillPercent int
	// DiscardValues skips the node value store (structure-only store).
	DiscardValues bool
	// DecodeCacheBytes budgets the NoK store's decoded-block cache, which
	// keeps recently decoded structure blocks in their entry form so hot
	// scans skip re-parsing (an in-memory complement to the buffer pool).
	// 0 keeps the default (1 MiB); a negative value disables the cache.
	DecodeCacheBytes int64
	// DisableWAL turns off the write-ahead log that file-backed stores
	// otherwise get, trading crash atomicity of updates for one less file
	// and fewer fsyncs. Memory-backed stores never have a WAL.
	DisableWAL bool
	// Durability selects how update commits reach disk on a write-ahead-
	// logged store: DurabilitySync (default) blocks each update until its
	// batch is flushed; DurabilityGrouped blocks until a shared group
	// flush covers the batch, letting concurrent updaters split the fsync
	// cost; DurabilityAsync returns as soon as the batch is sealed, with
	// durability reported through a Commit handle (see SetAccessAsync and
	// AwaitDurable). Stores without a WAL ignore the setting: their
	// updates are applied in place and have no deferred flush.
	Durability Durability
	// WrapPager, when set, wraps the data pager before the store (and the
	// WAL) sees it — a seam for fault-injection tests.
	WrapPager func(storage.Pager) storage.Pager
	// WrapWALFile, when set, wraps the write-ahead log file — the matching
	// fault-injection seam for the log itself.
	WrapWALFile func(storage.File) storage.File
	// SlowQueryThreshold, when positive, forces tracing on for every query
	// and dumps the trace of any query at least this slow to SlowQueryLog.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query dumps (default os.Stderr). Each
	// report is a single Write, serialized by the store, so the writer
	// need not be goroutine-safe.
	SlowQueryLog io.Writer
	// SlowPinThreshold, when positive, reports any snapshot pin held at
	// least this long to SlowPinLog. A long-held pin delays page
	// reclamation the way a slow query delays answers: pages freed by
	// updates stay quarantined until the pinned version retires.
	SlowPinThreshold time.Duration
	// SlowPinLog receives slow-pin reports (default os.Stderr), serialized
	// like SlowQueryLog.
	SlowPinLog io.Writer
	// SLOLatency, when positive, sets the store's per-query latency
	// objective: every query slower than it burns error budget. The
	// objective and the burn accounting are exported through the metrics
	// registry (slo_latency_objective_us, slo_queries_over_objective,
	// slo_burn_rate_permille).
	SLOLatency time.Duration
	// SLOTarget is the availability target the error budget is measured
	// against (default 0.999: one query in a thousand may miss the
	// objective before the burn rate exceeds 1000 permille).
	SLOTarget float64
}

// Durability selects when an update commit becomes durable relative to the
// call that made it. All three modes share the same crash guarantees —
// recovery replays an exact prefix of the committed batches — they differ
// only in when the caller learns its batch is in that prefix.
type Durability int

const (
	// DurabilitySync makes each update durable before its call returns:
	// the committer seals its batch and runs the group flush itself
	// (coalescing any concurrently sealed batches). Today's semantics,
	// and the default.
	DurabilitySync Durability = iota
	// DurabilityGrouped blocks each update until the shared background
	// flush covers its batch: N concurrent updaters share one log fsync,
	// one data fsync and one checkpoint instead of paying 3 each.
	DurabilityGrouped
	// DurabilityAsync returns as soon as the batch is sealed (its effects
	// are immediately visible to queries); durability is reported through
	// the Commit handle of the *Async update variants, or collectively by
	// AwaitDurable. A crash can lose a suffix of unflushed updates — never
	// an interior one.
	DurabilityAsync
)

func (o *StoreOptions) defaults() {
	if o.PageSize == 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.PoolPages == 0 {
		o.PoolPages = 4096
	}
	if o.FillPercent == 0 {
		o.FillPercent = 90
	}
	if o.SLOTarget == 0 {
		o.SLOTarget = 0.999
	}
}

// Store is a sealed secure XML store. It is safe for concurrent use under
// snapshot isolation: queries pin the current published snapshot and run
// entirely lock-free against it, updates serialize among themselves and
// publish a new snapshot when they commit. Readers never block an updater
// and an updater never blocks readers.
type Store struct {
	// mu serializes updates (and snapshot publication) with each other.
	// Queries do NOT take it: they pin the current snapshot instead.
	mu sync.RWMutex
	// commitMu serializes DurabilitySync commits with each other across
	// their whole seal-and-flush span (see lockUpdate): a Sync commit
	// keeps the historical one-flush-per-batch I/O behavior instead of
	// coalescing with concurrent committers. The relaxed modes never take
	// it — coalescing is exactly what they opt into.
	commitMu sync.Mutex
	opts     StoreOptions
	pool     *storage.BufferPool
	// ss is the live, mutable secure store; only update paths (under
	// s.mu) touch it. Queries go through cur's frozen view.
	ss *dol.SecureStore
	// dir is the live subject directory. While dirShared it is also
	// referenced by the published snapshot and must be cloned before
	// mutation (see mutableDir).
	dir       *acl.Directory
	dirShared bool
	modes     []string
	modeIdx   map[string]int
	// cur is the published snapshot queries pin; vt tracks version
	// lifetimes and quarantines freed pages until no pinned version can
	// still read them.
	cur atomic.Pointer[snapshot]
	vt  *storage.VersionTable
	// sink routes committed update metadata (the store.json image carried
	// in WAL commit records) to the persisted directory, once one is known.
	sink *metaSink
	// wp is the write-ahead-logged pager, nil for memory-backed or
	// DisableWAL stores. Update commits seal into its flush queue under
	// s.mu and flush after releasing it, so readers never wait out an
	// updater's fsyncs.
	wp *storage.WALPager
	// recovery records what opening the WAL found (zero value when the
	// store has no WAL or the log was clean).
	recovery storage.RecoveryInfo
	// failed marks the store poisoned: an update batch was rolled back
	// after buffering page writes, so the in-memory directory, codebook and
	// buffer pool are ahead of what disk will ever hold. New operations
	// fail (already-pinned snapshots finish serving their committed state);
	// reopening the store runs WAL recovery and rebuilds a consistent
	// image.
	failed atomic.Bool
	// reg is the store-wide metrics registry; every layer registers its
	// counters into it at construction (initObs), and the query-level
	// counters below are its members. All surfaces — MetricsSnapshot, the
	// debug endpoints, dolcli -stats, dolbench — read the same registry.
	reg          *obs.Registry
	queryTotal   *obs.Counter
	queryErrors  *obs.Counter
	querySlow    *obs.Counter
	queryAnswers *obs.Counter
	queryMatches *obs.Counter
	skipAccess   *obs.Counter
	skipStruct   *obs.Counter
	candRejects  *obs.Counter
	pathRejects  *obs.Counter
	pathEmpties  *obs.Counter
	pathClasses  *obs.Counter
	queryLatency *obs.Histogram
	// maskHits/maskMisses count skip-mask (shape) compilations served from
	// and missed by the per-snapshot MaskCache. They are created before the
	// first snapshot (whose cache captures them) and registered in initObs.
	maskHits   *obs.Counter
	maskMisses *obs.Counter
	snapPins   *obs.Counter
	snapUnpins *obs.Counter
	snapPinUs  *obs.Histogram
	// rec is the always-on query flight recorder: every query — traced or
	// not — folds a digest into it (a counting trace supplies the page
	// accounting when the caller attached no trace). traceDropped counts
	// events any query trace discarded past its limit; sloFinished/sloOver
	// drive the error-budget burn gauges.
	rec          *obs.Recorder
	traceDropped *obs.Counter
	sloFinished  *obs.Counter
	sloOver      *obs.Counter
	// slowMu serializes slow-query and slow-pin reports: queries finish
	// concurrently, and the log writers (bytes.Buffer, log files) need not
	// be goroutine-safe.
	slowMu sync.Mutex
	// Cached sidecar fragments (see marshalMeta); guarded by s.mu like the
	// structures they mirror.
	metaPre     []byte
	metaNokHead []byte
	metaVals    []byte
	metaFP      metaHeadState
}

// errStoreFailed poisons a store whose in-memory state diverged from disk
// when an update batch was discarded. See Store.failed.
var errStoreFailed = fmt.Errorf("securexml: store failed mid-update; close and reopen to recover")

// Failed reports whether the store has been poisoned by a discarded update
// batch or a failed group flush and must be reopened.
func (s *Store) Failed() bool { return s.failedNow() }

// Recovery reports what crash recovery found when the store was opened:
// how many committed batches were redone, whether their metadata sidecar
// was rewritten, and whether a torn or uncommitted log tail was discarded.
func (s *Store) Recovery() storage.RecoveryInfo { return s.recovery }

// Seal materializes the policy into a DOL-labeled NoK store and returns
// the queryable Store. The builder must not be reused afterwards.
func (b *Builder) Seal(opts StoreOptions) (*Store, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.doc == nil {
		return nil, fmt.Errorf("securexml: Seal before LoadXML")
	}
	opts.defaults()
	matrix, err := b.buildMatrix()
	if err != nil {
		return nil, err
	}
	sink := &metaSink{}
	var pager storage.Pager
	var wal *storage.WALPager
	if opts.Path != "" {
		fp, err := storage.OpenFilePager(opts.Path, opts.PageSize)
		if err != nil {
			return nil, err
		}
		pager = fp
	} else {
		pager = storage.NewMemPager(opts.PageSize)
	}
	if opts.WrapPager != nil {
		pager = opts.WrapPager(pager)
	}
	if opts.Path != "" && !opts.DisableWAL {
		// The initial bulk build runs outside any batch (the WAL is a
		// transparent proxy until Begin), so sealing journals nothing;
		// the log starts mattering at the first update.
		osf, err := storage.OpenOSFile(opts.Path + walSuffix)
		if err != nil {
			pager.Close()
			return nil, err
		}
		var log storage.File = osf
		if opts.WrapWALFile != nil {
			log = opts.WrapWALFile(log)
		}
		wp, _, err := storage.OpenWALPager(pager, log, sink.deliver)
		if err != nil {
			log.Close()
			pager.Close()
			return nil, err
		}
		pager, wal = wp, wp
	}
	pool := storage.NewBufferPool(pager, opts.PoolPages)
	ss, err := dol.BuildSecureStore(pool, b.doc, matrix, nok.BuildOptions{
		FillPercent: opts.FillPercent,
		StoreValues: !opts.DiscardValues,
	})
	if err != nil {
		return nil, err
	}
	applyDecodeCacheBudget(ss.Store(), opts.DecodeCacheBytes)
	s := &Store{
		opts:       opts,
		pool:       pool,
		ss:         ss,
		dir:        b.dir,
		modes:      b.modes,
		modeIdx:    b.modeIdx,
		sink:       sink,
		wp:         wal,
		maskHits:   obs.NewCounter(),
		maskMisses: obs.NewCounter(),
	}
	s.initSnapshot()
	if err := s.initObs(); err != nil {
		return nil, err
	}
	// Build the initial indexes eagerly so Seal (not the first query)
	// reports a build failure, matching the historical reindex-at-seal.
	if sn := s.cur.Load(); sn != nil {
		if err := sn.idx.ensure(sn.st); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// applyDecodeCacheBudget maps the StoreOptions encoding (0 = keep the
// store's default, negative = disable) onto the NoK decoded-block cache.
func applyDecodeCacheBudget(st *nok.Store, budget int64) {
	if budget == 0 {
		return
	}
	if budget < 0 {
		budget = 0
	}
	st.SetDecodeCacheBudget(budget)
}

// Match is one query answer.
type Match struct {
	// Node is the answer's document-order ID.
	Node NodeID
	// Tag and Value describe the answer node.
	Tag   string
	Value string
}

func (s *Store) mode(name string) (int, error) {
	m, ok := s.modeIdx[name]
	if !ok {
		return 0, fmt.Errorf("securexml: unknown mode %q (have %s)", name, strings.Join(s.modes, ", "))
	}
	return m, nil
}

// subjectIn resolves a subject name against one directory — a snapshot's
// for readers, the live one for updates (which hold s.mu).
func subjectIn(dir *acl.Directory, name string) (acl.SubjectID, error) {
	id, ok := dir.Lookup(name)
	if !ok {
		return acl.InvalidSubject, fmt.Errorf("securexml: unknown subject %q", name)
	}
	return id, nil
}

func (s *Store) subject(name string) (acl.SubjectID, error) {
	return subjectIn(s.dir, name)
}

// matches converts result node IDs to Match records against the query's
// pinned store. It threads ctx so the page reads the conversion performs
// land in the query's trace.
func (s *Store) matches(ctx context.Context, st *nok.Store, nodes []xmltree.NodeID) ([]Match, error) {
	out := make([]Match, 0, len(nodes))
	for _, n := range nodes {
		m, _, err := s.matchAt(ctx, st, n)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// viewAt builds the user's effective subject view over one snapshot: the
// subject is resolved against the snapshot's directory and the view wraps
// the snapshot's frozen secure store, so access decisions and evaluation
// read the same committed state.
func (s *Store) viewAt(sn *snapshot, user, mode string) (*dol.SubjectView, error) {
	u, err := subjectIn(sn.dir, user)
	if err != nil {
		return nil, err
	}
	mi, err := s.mode(mode)
	if err != nil {
		return nil, err
	}
	return sn.ss.View(effectiveBits(sn.dir, len(s.modes), mi, u)), nil
}

func (s *Store) run(ctx context.Context, user, mode, xpath string, opts QueryOptions) (ms []Match, err error) {
	qo := query.Options{
		Limit:              opts.Limit,
		Parallelism:        opts.Parallelism,
		DisableSummarySkip: opts.DisableSummarySkip,
		DisablePathSummary: opts.DisablePathSummary,
		Trace:              opts.Trace.inner(),
	}
	tr, finish := s.startQuery(&qo, opts.Analyze != nil)
	fp := ""
	defer func() { finish(fp, xpath, int64(len(ms)), err) }()
	ctx = obs.WithTrace(ctx, tr)
	endParse := tr.Span(obs.EvParse)
	pt, err := query.Parse(xpath)
	endParse()
	if err != nil {
		return nil, err
	}
	fp = fingerprintFor(pt, opts)
	r, err := s.acquireFor(opts)
	if err != nil {
		return nil, err
	}
	sn := r.sn
	tr.SnapshotPin(sn.seq)
	defer func() {
		tr.SnapshotUnpin(sn.seq, time.Since(r.at))
		s.release(r)
	}()
	if !opts.Unrestricted {
		view, err := s.viewAt(sn, user, mode)
		if err != nil {
			return nil, err
		}
		qo.View = view
		if opts.Pruned {
			qo.Semantics = query.SemanticsPrunedSubtree
		}
	}
	if err := sn.idx.ensure(sn.st); err != nil {
		return nil, err
	}
	res, err := evaluatorAt(sn).EvaluateCtx(ctx, pt, qo)
	if err != nil {
		return nil, err
	}
	s.queryAnswers.Add(int64(len(res.Nodes)))
	s.queryMatches.Add(int64(res.Matches))
	s.recordSkips(res.Skips)
	// Match materialization re-reads answer pages; under ANALYZE those pins
	// must land in their own attribution bucket, not an operator's.
	ms, err = s.matches(obs.WithTrace(ctx, tr.ForOp(query.OpOutput)), sn.st, res.Nodes)
	tr.Mark(obs.EvDone)
	if err == nil && opts.Analyze != nil {
		// Fold the forced trace into per-operator attribution against the
		// plan Explain computes from the same snapshot — compile state is
		// deterministic, so the plan matches what EvaluateCtx just built.
		qo.Trace = nil
		plan, perr := evaluatorAt(sn).Explain(ctx, pt, qo)
		if perr != nil {
			return nil, perr
		}
		opts.Analyze.an = query.AnalyzeTrace(plan, tr.Events(), tr.Dropped())
	}
	return ms, err
}

// Query evaluates the XPath expression as the given user under the given
// action mode, with the paper's default (Cho et al.) semantics: every node
// bound by a match must be accessible to the user or one of their groups.
func (s *Store) Query(user, mode, xpath string) ([]Match, error) {
	return s.QueryCtx(context.Background(), user, mode, xpath, QueryOptions{})
}

// QueryPruned is Query under the Gabillon–Bruno semantics (§4.2): subtrees
// rooted at inaccessible nodes contribute nothing, enforced with ε-STD
// path checks.
func (s *Store) QueryPruned(user, mode, xpath string) ([]Match, error) {
	return s.QueryCtx(context.Background(), user, mode, xpath, QueryOptions{Pruned: true})
}

// QueryUnrestricted evaluates without access control (administrative use).
func (s *Store) QueryUnrestricted(xpath string) ([]Match, error) {
	return s.QueryCtx(context.Background(), "", "", xpath, QueryOptions{Unrestricted: true})
}

func (s *Store) combinedBitIn(dir *acl.Directory, subject, mode string) (acl.SubjectID, error) {
	sub, err := subjectIn(dir, subject)
	if err != nil {
		return acl.InvalidSubject, err
	}
	mi, err := s.mode(mode)
	if err != nil {
		return acl.InvalidSubject, err
	}
	return acl.SubjectID(int(sub)*len(s.modes) + mi), nil
}

func (s *Store) combinedBit(subject string, mode string) (acl.SubjectID, error) {
	return s.combinedBitIn(s.dir, subject, mode)
}

// Accessible reports whether the named subject alone (no group expansion)
// may access node n under the mode.
func (s *Store) Accessible(subject, mode string, n NodeID) (bool, error) {
	r, err := s.acquire()
	if err != nil {
		return false, err
	}
	defer s.release(r)
	bit, err := s.combinedBitIn(r.sn.dir, subject, mode)
	if err != nil {
		return false, err
	}
	return r.sn.ss.Accessible(xmltree.NodeID(n), bit)
}

// UserAccessible reports whether the user, including their transitive
// groups, may access node n under the mode (paper footnote 4). The check
// runs against one pinned snapshot, so the group expansion and the node's
// access code come from the same committed state.
func (s *Store) UserAccessible(user, mode string, n NodeID) (bool, error) {
	r, err := s.acquire()
	if err != nil {
		return false, err
	}
	defer s.release(r)
	view, err := s.viewAt(r.sn, user, mode)
	if err != nil {
		return false, err
	}
	return view.Accessible(xmltree.NodeID(n))
}

// Commit is the durability handle of one committed update. The update's
// effects are visible to queries as soon as the updating call returns; the
// handle reports when (and whether) they became durable. The zero-cost
// handle of a store without a WAL is already resolved.
type Commit struct {
	s  *Store
	cw *storage.CommitWaiter // nil when there is nothing to flush
}

// Done returns a channel closed once the update is durable or its flush
// failed; consult Err afterwards.
func (c *Commit) Done() <-chan struct{} {
	if c.cw == nil {
		return closedDone
	}
	return c.cw.Done()
}

// Err returns the flush outcome. Valid only after Done is closed.
func (c *Commit) Err() error {
	if c.cw == nil {
		return nil
	}
	return c.cw.Err()
}

// Wait blocks until the update is durable and returns the flush outcome.
// A flush failure has already poisoned the store (Failed reports true);
// reopen to recover — the log decides which sealed batches survive.
func (c *Commit) Wait() error {
	if c.cw == nil {
		return nil
	}
	return c.cw.Wait()
}

var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// updateTxn runs fn as one user-visible atomic update and SEALS it with
// the metadata sidecar: on a write-ahead-logged pager it opens the
// outermost batch (the nok/dol layers' own batches nest inside), flushes
// every dirty buffer-pool frame into it, and moves the batch onto the
// flush queue — cheap, no I/O. The caller must hold the write lock, and
// must call finish AFTER releasing it: the expensive flush protocol runs
// there, outside s.mu, so queries never stall behind an updater's fsyncs.
//
// If the batch is rolled back or sealing fails after page writes were
// buffered, the in-memory store is ahead of what disk will ever hold; the
// store is then poisoned (see Store.failed) and must be reopened. Pinned
// snapshots are unaffected either way: a transaction only ever writes
// freshly allocated or quarantine-cleared pages, never a page a published
// snapshot references.
func (s *Store) updateTxn(fn func() error) (*Commit, error) {
	if s.failedNow() {
		return nil, errStoreFailed
	}
	// The live codebook may still be shared read-only with the published
	// snapshot; detach it before any mutation.
	s.ss.WillMutate()
	if s.wp == nil {
		if err := fn(); err != nil {
			s.discardRetired()
			return nil, err
		}
		return &Commit{s: s}, nil
	}
	if err := s.wp.Begin(); err != nil {
		return nil, err
	}
	runErr := fn()
	// Flush unconditionally: on success the dirty frames must join the
	// batch before commit; on failure they must join it before rollback so
	// the pager's dirty-abort report distinguishes a clean validation
	// failure from a discarded half-written update.
	flushErr := s.pool.FlushAll()
	if runErr == nil {
		runErr = flushErr
	}
	if runErr == nil {
		var meta []byte
		if meta, runErr = s.marshalMeta(); runErr == nil {
			cw, err := s.wp.SealCommit(meta)
			if err == nil {
				return &Commit{s: s, cw: cw}, nil
			}
			s.noteAbort(s.wp)
			s.discardRetired()
			return nil, err
		}
	}
	_ = s.wp.Rollback()
	s.noteAbort(s.wp)
	s.discardRetired()
	return nil, runErr
}

// discardRetired drops the pages an aborted transaction freed instead of
// publishing them for reuse: their old content may still be what the
// current snapshot reads. An abort that actually buffered writes has
// poisoned the store anyway; a clean validation failure freed nothing.
func (s *Store) discardRetired() { s.ss.Store().TakeRetired() }

// lockUpdate acquires the write lock for one update running under
// durability mode d. On a journaled store a DurabilitySync update
// additionally takes commitMu, held until finish completes its inline
// flush, so concurrent Sync commits never coalesce into one group. Every
// lockUpdate must be paired with either failUpdate (update abandoned
// before updateTxn ran) or s.mu.Unlock-then-finish.
func (s *Store) lockUpdate(d Durability) {
	if d == DurabilitySync && s.wp != nil {
		s.commitMu.Lock()
	}
	s.mu.Lock()
}

// failUpdate abandons an update between lockUpdate and updateTxn: it
// releases whatever lockUpdate took and passes err through.
func (s *Store) failUpdate(d Durability, err error) error {
	s.mu.Unlock()
	if d == DurabilitySync && s.wp != nil {
		s.commitMu.Unlock()
	}
	return err
}

// finish completes a sealed update according to the durability mode. It
// must be called WITHOUT s.mu held — this is where the flush I/O happens
// (inline for DurabilitySync, on the background flusher for the others).
func (s *Store) finish(d Durability, c *Commit, err error) (*Commit, error) {
	if d == DurabilitySync && s.wp != nil {
		defer s.commitMu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	if c.cw == nil {
		return c, nil
	}
	switch d {
	case DurabilityAsync:
		s.wp.ScheduleFlush()
		return c, nil
	case DurabilityGrouped:
		s.wp.ScheduleFlush()
		return c, c.Wait()
	default: // DurabilitySync: the committer is its own flusher.
		// Flush's return is authoritative: the waiter resolves at the log
		// sync, before the apply/checkpoint tail, and a tail failure
		// poisons the store — a Sync caller must hear about it here.
		if err := s.wp.Flush(); err != nil {
			return c, err
		}
		return c, c.Wait()
	}
}

// AwaitDurable blocks until every update committed so far is durable — the
// collective barrier for DurabilityAsync (and a no-op for stores without a
// WAL or with nothing pending).
func (s *Store) AwaitDurable() error {
	if s.wp == nil {
		return nil
	}
	return s.wp.FlushBarrier()
}

// noteAbort poisons the store when the pager reports that an abort
// discarded buffered writes. The caller must hold the write lock.
func (s *Store) noteAbort(tp storage.TxnPager) {
	type dirtyReporter interface{ LastAbortDirty() bool }
	if d, ok := tp.(dirtyReporter); ok && d.LastAbortDirty() {
		s.failed.Store(true)
	}
}

// SetAccess grants or revokes the subject's access to node n (or, with
// wholeSubtree, to n's entire subtree) under the mode — the §3.4
// accessibility updates, applied in place to the affected blocks only.
// Durability follows StoreOptions.Durability.
func (s *Store) SetAccess(subject, mode string, n NodeID, allowed, wholeSubtree bool) error {
	_, err := s.setAccess(s.opts.Durability, subject, mode, n, allowed, wholeSubtree)
	return err
}

// SetAccessAsync is SetAccess with DurabilityAsync regardless of the
// store's configured mode: it returns as soon as the update is applied and
// sealed (already visible to queries), and the Commit handle reports when
// it is durable. The motivating workload — bursts of ACL toggles from many
// users — commits through here and shares one group flush.
func (s *Store) SetAccessAsync(subject, mode string, n NodeID, allowed, wholeSubtree bool) (*Commit, error) {
	return s.setAccess(DurabilityAsync, subject, mode, n, allowed, wholeSubtree)
}

func (s *Store) setAccess(d Durability, subject, mode string, n NodeID, allowed, wholeSubtree bool) (*Commit, error) {
	s.lockUpdate(d)
	bit, err := s.combinedBit(subject, mode)
	if err != nil {
		return nil, s.failUpdate(d, err)
	}
	c, err := s.updateTxn(func() error {
		if wholeSubtree {
			return s.ss.SetSubtreeAccess(xmltree.NodeID(n), bit, allowed)
		}
		return s.ss.SetNodeAccess(xmltree.NodeID(n), bit, allowed)
	})
	if err == nil {
		s.publish(false)
	}
	s.mu.Unlock()
	return s.finish(d, c, err)
}

// AddUser registers a new user with no access anywhere — a codebook-only
// operation (§3.4).
func (s *Store) AddUser(name string) error {
	return s.addSubject(name, false, "")
}

// AddUserLike registers a new user whose rights match an existing
// subject's in every mode.
func (s *Store) AddUserLike(name, like string) error {
	return s.addSubject(name, false, like)
}

// AddGroup registers a new group with no access anywhere.
func (s *Store) AddGroup(name string) error {
	return s.addSubject(name, true, "")
}

func (s *Store) addSubject(name string, group bool, like string) error {
	d := s.opts.Durability
	s.lockUpdate(d)
	var likeID acl.SubjectID = acl.InvalidSubject
	if like != "" {
		var err error
		likeID, err = s.subject(like)
		if err != nil {
			return s.failUpdate(d, err)
		}
	}
	// Codebook-only update: no pages change, but the commit still journals
	// the refreshed metadata sidecar so the new subject survives a crash.
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error {
		dir := s.mutableDir()
		var err error
		if group {
			_, err = dir.AddGroup(name)
		} else {
			_, err = dir.AddUser(name)
		}
		if err != nil {
			return err
		}
		numModes := len(s.modes)
		for m := 0; m < numModes; m++ {
			if likeID == acl.InvalidSubject {
				s.ss.AddSubject()
			} else {
				if _, err := s.ss.AddSubjectLike(acl.SubjectID(int(likeID)*numModes + m)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err == nil {
		s.publish(false)
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// AddMember records a group membership on the sealed store (affects only
// effective-rights expansion, not the encoding).
func (s *Store) AddMember(group, member string) error {
	d := s.opts.Durability
	s.lockUpdate(d)
	g, err := s.subject(group)
	if err != nil {
		return s.failUpdate(d, err)
	}
	m, err := s.subject(member)
	if err != nil {
		return s.failUpdate(d, err)
	}
	// Directory-only update; the commit journals the refreshed sidecar.
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error { return s.mutableDir().AddMember(g, m) })
	if err == nil {
		s.publish(false)
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// InsertXML inserts the XML fragment as a new child of parent (after the
// existing child `after`, or first when after is InvalidNode). Per the
// paper's update model the inserted nodes arrive with access controls:
// every fragment node receives the access control list currently in force
// at the parent node.
func (s *Store) InsertXML(parent, after NodeID, fragment string) error {
	d := s.opts.Durability
	s.lockUpdate(d)
	frag, err := xmltree.ParseString(fragment)
	if err != nil {
		return s.failUpdate(d, err)
	}
	code, err := s.ss.Store().AccessCodeAt(xmltree.NodeID(parent))
	if err != nil {
		return s.failUpdate(d, err)
	}
	row := s.ss.Codebook().ACL(code)
	fm := acl.NewMatrix(frag.Len(), s.ss.Codebook().NumSubjects())
	for n := 0; n < frag.Len(); n++ {
		fm.SetRow(xmltree.NodeID(n), row)
	}
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error {
		return s.ss.InsertSubtree(xmltree.NodeID(parent), xmltree.NodeID(after), frag, fm)
	})
	if err == nil {
		s.publish(true)
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// Delete removes node n's subtree.
func (s *Store) Delete(n NodeID) error {
	s.lockUpdate(s.opts.Durability)
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error { return s.ss.DeleteSubtree(xmltree.NodeID(n)) })
	if err == nil {
		s.publish(true)
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// Move relocates node n's subtree under newParent (after the sibling
// `after`, or first when InvalidNode), preserving its access controls.
func (s *Store) Move(n, newParent, after NodeID) error {
	s.lockUpdate(s.opts.Durability)
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error {
		return s.ss.MoveSubtree(xmltree.NodeID(n), xmltree.NodeID(newParent), xmltree.NodeID(after))
	})
	if err == nil {
		s.publish(true)
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// Vacuum performs the paper's lazy redundancy correction (§3.4): it
// rewrites the embedded access codes canonically, merging transitions made
// redundant by earlier updates and reclaiming duplicate codebook entries.
// It is a full-document maintenance pass. Node IDs and extents are
// unchanged, so published indexes stay shared.
func (s *Store) Vacuum() error {
	s.lockUpdate(s.opts.Durability)
	s.invalidateMetaHead()
	c, err := s.updateTxn(s.ss.Vacuum)
	if err == nil {
		s.publish(false)
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// NumNodes returns the document's node count (of the current snapshot).
func (s *Store) NumNodes() int { return s.cur.Load().st.NumNodes() }

// Tag returns the tag of node n.
func (s *Store) Tag(n NodeID) (string, error) {
	r, err := s.acquire()
	if err != nil {
		return "", err
	}
	defer s.release(r)
	st := r.sn.st
	code, err := st.Tag(xmltree.NodeID(n))
	if err != nil {
		return "", err
	}
	return st.TagName(code), nil
}

// Value returns the text value of node n ("" when values are not stored).
func (s *Store) Value(n NodeID) (string, error) {
	r, err := s.acquire()
	if err != nil {
		return "", err
	}
	defer s.release(r)
	vs := r.sn.st.Values()
	if vs == nil {
		return "", nil
	}
	return vs.Value(xmltree.NodeID(n))
}

// Modes lists the registered action mode names.
func (s *Store) Modes() []string { return append([]string(nil), s.modes...) }

// Subjects lists the subject names in SubjectID order (of the current
// snapshot's directory).
func (s *Store) Subjects() []string {
	dir := s.cur.Load().dir
	out := make([]string, dir.Len())
	for i := range out {
		out[i] = dir.Name(acl.SubjectID(i))
	}
	return out
}

// Stats summarizes the physical representation, the quantities of the
// paper's §5.1 storage analysis.
type Stats struct {
	Nodes           int
	StructurePages  int
	Transitions     int
	CodebookEntries int
	CodebookBytes   int
	DirectoryBytes  int
	// SummaryBytes is the in-memory footprint of the per-page structural
	// summaries driving structure-aware page skipping.
	SummaryBytes int
	// PathSummaryBytes is the in-memory footprint of the path summary
	// (one node per distinct root-to-tag path plus per-block class sets)
	// driving path routing.
	PathSummaryBytes int
	Pool             storage.PoolStats
	IO               storage.IOStats
	// DecodeCache reports the decoded-block cache's counters.
	DecodeCache CacheStats
}

// CacheStats mirror the decoded-block cache counters: hit/miss/eviction
// counts plus the cache's current and budgeted size in (estimated) bytes.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
	Budget    int64
}

// SkipStats count the page reads one query avoided, by cause: pages
// skipped because the directory proves them fully inaccessible to the
// subject (Access), pages skipped because the per-page structural
// summaries prove them irrelevant to the pattern (Struct), and root
// candidates rejected from the directory alone (Candidates).
// PathCandidates counts candidates the path summary rejected before any
// I/O, PathClasses the access verdicts it resolved at the path-class
// level, and PathEmpty is 1 when it proved the query empty outright.
type SkipStats struct {
	AccessPages    int64
	StructPages    int64
	Candidates     int64
	PathCandidates int64
	PathClasses    int64
	PathEmpty      int64
}

// Stats collects the store's current statistics against one pinned
// snapshot. Note that the transition count requires a full walk of the
// structure store, which itself runs through the buffer pool; use
// PoolStats or DecodeCacheStats for cheap, walk-free counters around
// individual queries.
func (s *Store) Stats() (Stats, error) {
	r, err := s.acquire()
	if err != nil {
		return Stats{}, err
	}
	defer s.release(r)
	sn := r.sn
	tr, err := sn.ss.TransitionCount()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Nodes:            sn.st.NumNodes(),
		StructurePages:   sn.st.NumPages(),
		Transitions:      tr,
		CodebookEntries:  sn.ss.Codebook().Len(),
		CodebookBytes:    sn.ss.Codebook().Bytes(),
		DirectoryBytes:   sn.st.DirectoryBytes(),
		SummaryBytes:     sn.st.SummaryBytes(),
		PathSummaryBytes: sn.st.PathSummaryBytes(),
		Pool:             s.pool.Stats(),
		IO:               s.pool.Pager().Stats(),
		DecodeCache:      s.DecodeCacheStats(),
	}, nil
}

// PoolStats returns the buffer pool's counters without touching any page —
// safe to sample before and after a query to measure its physical reads.
func (s *Store) PoolStats() storage.PoolStats { return s.pool.Stats() }

// PageSize returns the store's page size in bytes.
func (s *Store) PageSize() int { return s.opts.PageSize }

// PoolBufferedBytes returns the bytes currently held by the buffer pool
// (buffered frames × page size). The tenant registry samples it to enforce
// a global byte budget across stores.
func (s *Store) PoolBufferedBytes() int64 {
	return int64(s.pool.Buffered()) * int64(s.opts.PageSize)
}

// PoolPinned returns the number of outstanding page pins — zero once every
// query, cursor and snapshot against the store has finished.
func (s *Store) PoolPinned() int { return s.pool.Pinned() }

// SetPoolCapacity re-budgets the buffer pool to at most frames pages,
// evicting (and writing back) LRU frames immediately. The tenant registry
// uses it to divide one global byte budget across however many stores are
// open; it is safe to call while queries and updates run.
func (s *Store) SetPoolCapacity(frames int) error {
	return s.pool.SetCapacity(frames)
}

// SetDecodeCacheBudget re-budgets the decoded-block cache at runtime; ≤ 0
// disables decode caching and drops the current contents.
func (s *Store) SetDecodeCacheBudget(budget int64) {
	s.ss.Store().SetDecodeCacheBudget(budget)
}

// DecodeCacheStats returns the decoded-block cache's counters without
// touching any page.
func (s *Store) DecodeCacheStats() CacheStats {
	ds := s.ss.Store().DecodeCacheStats()
	return CacheStats{
		Hits:      ds.Hits,
		Misses:    ds.Misses,
		Evictions: ds.Evictions,
		Entries:   ds.Entries,
		Bytes:     ds.Bytes,
		Budget:    ds.Budget,
	}
}

// Close flushes and releases the store; sealed-but-unflushed async commits
// are flushed on the way out (their Commit handles resolve). Callers must
// finish queries and close cursors and snapshots first. A poisoned store
// (see Failed) is closed without flushing: its buffers were built against
// discarded batch state, and writing them outside a batch would tear the
// on-disk image that WAL recovery otherwise guarantees intact.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failedNow() {
		return s.pool.Pager().Close()
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	return s.pool.Pager().Close()
}
