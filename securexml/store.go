package securexml

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"dolxml/internal/acl"
	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/query"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// StoreOptions configure the physical representation.
type StoreOptions struct {
	// Path, when set, backs the store with a page file on disk (required
	// for Save); empty keeps the pages in memory.
	Path string
	// PageSize is the block size in bytes (default 4096, the paper's).
	PageSize int
	// PoolPages bounds the buffer pool (default 4096 frames).
	PoolPages int
	// FillPercent leaves slack in structure blocks for in-place updates
	// (default 90).
	FillPercent int
	// DiscardValues skips the node value store (structure-only store).
	DiscardValues bool
	// DecodeCacheBytes budgets the NoK store's decoded-block cache, which
	// keeps recently decoded structure blocks in their entry form so hot
	// scans skip re-parsing (an in-memory complement to the buffer pool).
	// 0 keeps the default (1 MiB); a negative value disables the cache.
	DecodeCacheBytes int64
	// DisableWAL turns off the write-ahead log that file-backed stores
	// otherwise get, trading crash atomicity of updates for one less file
	// and fewer fsyncs. Memory-backed stores never have a WAL.
	DisableWAL bool
	// Durability selects how update commits reach disk on a write-ahead-
	// logged store: DurabilitySync (default) blocks each update until its
	// batch is flushed; DurabilityGrouped blocks until a shared group
	// flush covers the batch, letting concurrent updaters split the fsync
	// cost; DurabilityAsync returns as soon as the batch is sealed, with
	// durability reported through a Commit handle (see SetAccessAsync and
	// AwaitDurable). Stores without a WAL ignore the setting: their
	// updates are applied in place and have no deferred flush.
	Durability Durability
	// WrapPager, when set, wraps the data pager before the store (and the
	// WAL) sees it — a seam for fault-injection tests.
	WrapPager func(storage.Pager) storage.Pager
	// WrapWALFile, when set, wraps the write-ahead log file — the matching
	// fault-injection seam for the log itself.
	WrapWALFile func(storage.File) storage.File
	// SlowQueryThreshold, when positive, forces tracing on for every query
	// and dumps the trace of any query at least this slow to SlowQueryLog.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query dumps (default os.Stderr). Each
	// report is a single Write, serialized by the store, so the writer
	// need not be goroutine-safe.
	SlowQueryLog io.Writer
}

// Durability selects when an update commit becomes durable relative to the
// call that made it. All three modes share the same crash guarantees —
// recovery replays an exact prefix of the committed batches — they differ
// only in when the caller learns its batch is in that prefix.
type Durability int

const (
	// DurabilitySync makes each update durable before its call returns:
	// the committer seals its batch and runs the group flush itself
	// (coalescing any concurrently sealed batches). Today's semantics,
	// and the default.
	DurabilitySync Durability = iota
	// DurabilityGrouped blocks each update until the shared background
	// flush covers its batch: N concurrent updaters share one log fsync,
	// one data fsync and one checkpoint instead of paying 3 each.
	DurabilityGrouped
	// DurabilityAsync returns as soon as the batch is sealed (its effects
	// are immediately visible to queries); durability is reported through
	// the Commit handle of the *Async update variants, or collectively by
	// AwaitDurable. A crash can lose a suffix of unflushed updates — never
	// an interior one.
	DurabilityAsync
)

func (o *StoreOptions) defaults() {
	if o.PageSize == 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.PoolPages == 0 {
		o.PoolPages = 4096
	}
	if o.FillPercent == 0 {
		o.FillPercent = 90
	}
}

// Store is a sealed secure XML store. It is safe for concurrent use:
// queries may run in parallel; update operations are serialized and
// exclude queries.
type Store struct {
	// mu serializes updates against queries. Query paths hold the read
	// lock; mutating paths hold the write lock.
	mu sync.RWMutex
	// commitMu serializes DurabilitySync commits with each other across
	// their whole seal-and-flush span (see lockUpdate): a Sync commit
	// keeps the historical one-flush-per-batch I/O behavior instead of
	// coalescing with concurrent committers. The relaxed modes never take
	// it — coalescing is exactly what they opt into.
	commitMu sync.Mutex
	opts     StoreOptions
	pool     *storage.BufferPool
	ss       *dol.SecureStore
	dir      *acl.Directory
	modes    []string
	modeIdx  map[string]int
	idxPool  *storage.BufferPool
	index    *btree.Tree
	vindex   *btree.ValueTree
	idxDirty bool
	// sink routes committed update metadata (the store.json image carried
	// in WAL commit records) to the persisted directory, once one is known.
	sink *metaSink
	// wp is the write-ahead-logged pager, nil for memory-backed or
	// DisableWAL stores. Update commits seal into its flush queue under
	// s.mu and flush after releasing it, so readers never wait out an
	// updater's fsyncs.
	wp *storage.WALPager
	// recovery records what opening the WAL found (zero value when the
	// store has no WAL or the log was clean).
	recovery storage.RecoveryInfo
	// failed marks the store poisoned: an update batch was rolled back
	// after buffering page writes, so the in-memory directory, codebook and
	// buffer pool are ahead of what disk will ever hold. Every subsequent
	// operation fails and Close skips flushing; reopening the store runs
	// WAL recovery and rebuilds a consistent image.
	failed bool
	// reg is the store-wide metrics registry; every layer registers its
	// counters into it at construction (initObs), and the query-level
	// counters below are its members. All surfaces — MetricsSnapshot, the
	// debug endpoints, dolcli -stats, dolbench — read the same registry.
	reg          *obs.Registry
	queryTotal   *obs.Counter
	queryErrors  *obs.Counter
	querySlow    *obs.Counter
	queryAnswers *obs.Counter
	queryMatches *obs.Counter
	skipAccess   *obs.Counter
	skipStruct   *obs.Counter
	candRejects  *obs.Counter
	queryLatency *obs.Histogram
	// slowMu serializes slow-query reports: queries finish concurrently,
	// and SlowQueryLog writers (bytes.Buffer, log files) need not be
	// goroutine-safe.
	slowMu sync.Mutex
	// metaHead caches the sidecar image minus the codebook (see
	// marshalMeta); metaHeadFP is the NoK shape it was built against. Both
	// are guarded by s.mu like the structures they mirror.
	metaHead   []byte
	metaHeadFP metaHeadState
}

// errStoreFailed poisons a store whose in-memory state diverged from disk
// when an update batch was discarded. See Store.failed.
var errStoreFailed = fmt.Errorf("securexml: store failed mid-update; close and reopen to recover")

// Failed reports whether the store has been poisoned by a discarded update
// batch or a failed group flush and must be reopened.
func (s *Store) Failed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.failedLocked()
}

// failedLocked is the poisoned-state check behind Failed, queries and
// updates: the explicit flag (an abort discarded buffered writes), or a
// broken WAL (a group flush died, so the in-memory state of every batch
// sealed since is ahead of what disk will ever hold). Caller holds s.mu in
// either mode.
func (s *Store) failedLocked() bool {
	return s.failed || (s.wp != nil && s.wp.Broken() != nil)
}

// Recovery reports what crash recovery found when the store was opened:
// how many committed batches were redone, whether their metadata sidecar
// was rewritten, and whether a torn or uncommitted log tail was discarded.
func (s *Store) Recovery() storage.RecoveryInfo { return s.recovery }

// Seal materializes the policy into a DOL-labeled NoK store and returns
// the queryable Store. The builder must not be reused afterwards.
func (b *Builder) Seal(opts StoreOptions) (*Store, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.doc == nil {
		return nil, fmt.Errorf("securexml: Seal before LoadXML")
	}
	opts.defaults()
	matrix, err := b.buildMatrix()
	if err != nil {
		return nil, err
	}
	sink := &metaSink{}
	var pager storage.Pager
	var wal *storage.WALPager
	if opts.Path != "" {
		fp, err := storage.OpenFilePager(opts.Path, opts.PageSize)
		if err != nil {
			return nil, err
		}
		pager = fp
	} else {
		pager = storage.NewMemPager(opts.PageSize)
	}
	if opts.WrapPager != nil {
		pager = opts.WrapPager(pager)
	}
	if opts.Path != "" && !opts.DisableWAL {
		// The initial bulk build runs outside any batch (the WAL is a
		// transparent proxy until Begin), so sealing journals nothing;
		// the log starts mattering at the first update.
		osf, err := storage.OpenOSFile(opts.Path + walSuffix)
		if err != nil {
			pager.Close()
			return nil, err
		}
		var log storage.File = osf
		if opts.WrapWALFile != nil {
			log = opts.WrapWALFile(log)
		}
		wp, _, err := storage.OpenWALPager(pager, log, sink.deliver)
		if err != nil {
			log.Close()
			pager.Close()
			return nil, err
		}
		pager, wal = wp, wp
	}
	pool := storage.NewBufferPool(pager, opts.PoolPages)
	ss, err := dol.BuildSecureStore(pool, b.doc, matrix, nok.BuildOptions{
		FillPercent: opts.FillPercent,
		StoreValues: !opts.DiscardValues,
	})
	if err != nil {
		return nil, err
	}
	applyDecodeCacheBudget(ss.Store(), opts.DecodeCacheBytes)
	s := &Store{
		opts:     opts,
		pool:     pool,
		ss:       ss,
		dir:      b.dir,
		modes:    b.modes,
		modeIdx:  b.modeIdx,
		idxDirty: true,
		sink:     sink,
		wp:       wal,
	}
	if err := s.initObs(); err != nil {
		return nil, err
	}
	if err := s.reindex(); err != nil {
		return nil, err
	}
	return s, nil
}

// applyDecodeCacheBudget maps the StoreOptions encoding (0 = keep the
// store's default, negative = disable) onto the NoK decoded-block cache.
func applyDecodeCacheBudget(st *nok.Store, budget int64) {
	if budget == 0 {
		return
	}
	if budget < 0 {
		budget = 0
	}
	st.SetDecodeCacheBudget(budget)
}

// reindex rebuilds the in-memory tag index from the structure store. The
// index is a derived structure (the paper assumes B+-trees as given) and
// is rebuilt after structural updates rather than persisted.
func (s *Store) reindex() error {
	s.idxPool = storage.NewBufferPool(storage.NewMemPager(s.opts.PageSize), 1<<30/s.opts.PageSize)
	t, err := btree.New(s.idxPool)
	if err != nil {
		return err
	}
	var vt *btree.ValueTree
	vs := s.ss.Store().Values()
	if vs != nil {
		vt, err = btree.NewValueTree(s.idxPool)
		if err != nil {
			return err
		}
	}
	var indexErr error
	err = s.ss.Store().ForEachExtent(func(n, end xmltree.NodeID, level int, tag int32) {
		if indexErr != nil {
			return
		}
		p := btree.Posting{Node: n, End: end, Level: uint16(level)}
		if err := t.Insert(tag, p); err != nil {
			indexErr = err
			return
		}
		if vt == nil {
			return
		}
		v, err := vs.Value(n)
		if err != nil {
			indexErr = err
			return
		}
		if v != "" {
			if err := vt.Insert(tag, v, p); err != nil {
				indexErr = err
			}
		}
	})
	if err == nil {
		err = indexErr
	}
	if err != nil {
		return err
	}
	s.index = t
	s.vindex = vt
	s.idxDirty = false
	return nil
}

// Match is one query answer.
type Match struct {
	// Node is the answer's document-order ID.
	Node NodeID
	// Tag and Value describe the answer node.
	Tag   string
	Value string
}

func (s *Store) mode(name string) (int, error) {
	m, ok := s.modeIdx[name]
	if !ok {
		return 0, fmt.Errorf("securexml: unknown mode %q (have %s)", name, strings.Join(s.modes, ", "))
	}
	return m, nil
}

func (s *Store) subject(name string) (acl.SubjectID, error) {
	id, ok := s.dir.Lookup(name)
	if !ok {
		return acl.InvalidSubject, fmt.Errorf("securexml: unknown subject %q", name)
	}
	return id, nil
}

// matches converts result node IDs to Match records. It threads ctx so
// the page reads the conversion performs land in the query's trace.
func (s *Store) matches(ctx context.Context, nodes []xmltree.NodeID) ([]Match, error) {
	out := make([]Match, 0, len(nodes))
	for _, n := range nodes {
		m, _, err := s.matchAt(ctx, n)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// lockForQuery takes the read lock for a query, first rebuilding a stale
// index under the write lock. On success the caller owns one read-lock
// hold and must release it with s.mu.RUnlock().
func (s *Store) lockForQuery() error {
	s.mu.RLock()
	if s.failedLocked() {
		s.mu.RUnlock()
		return errStoreFailed
	}
	if !s.idxDirty {
		return nil
	}
	s.mu.RUnlock()
	s.mu.Lock()
	if s.idxDirty {
		if err := s.reindex(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.mu.Unlock()
	s.mu.RLock()
	return nil
}

// evaluator builds the query evaluator over the current indexes; the
// caller must hold the read lock.
func (s *Store) evaluator() *query.Evaluator {
	ev := query.NewEvaluator(s.ss.Store(), s.index)
	if s.vindex != nil {
		ev.WithValueIndex(s.vindex)
	}
	return ev
}

func (s *Store) run(ctx context.Context, xpath string, opts query.Options) (ms []Match, err error) {
	tr, finish := s.startQuery(&opts)
	defer func() { finish(xpath, err) }()
	ctx = obs.WithTrace(ctx, tr)
	endParse := tr.Span(obs.EvParse)
	pt, err := query.Parse(xpath)
	endParse()
	if err != nil {
		return nil, err
	}
	if err := s.lockForQuery(); err != nil {
		return nil, err
	}
	defer s.mu.RUnlock()
	res, err := s.evaluator().EvaluateCtx(ctx, pt, opts)
	if err != nil {
		return nil, err
	}
	s.queryAnswers.Add(int64(len(res.Nodes)))
	s.queryMatches.Add(int64(res.Matches))
	s.recordSkips(res.Skips)
	ms, err = s.matches(ctx, res.Nodes)
	tr.Mark(obs.EvDone)
	return ms, err
}

// Query evaluates the XPath expression as the given user under the given
// action mode, with the paper's default (Cho et al.) semantics: every node
// bound by a match must be accessible to the user or one of their groups.
func (s *Store) Query(user, mode, xpath string) ([]Match, error) {
	return s.QueryCtx(context.Background(), user, mode, xpath, QueryOptions{})
}

// QueryPruned is Query under the Gabillon–Bruno semantics (§4.2): subtrees
// rooted at inaccessible nodes contribute nothing, enforced with ε-STD
// path checks.
func (s *Store) QueryPruned(user, mode, xpath string) ([]Match, error) {
	return s.QueryCtx(context.Background(), user, mode, xpath, QueryOptions{Pruned: true})
}

// QueryUnrestricted evaluates without access control (administrative use).
func (s *Store) QueryUnrestricted(xpath string) ([]Match, error) {
	return s.QueryCtx(context.Background(), "", "", xpath, QueryOptions{Unrestricted: true})
}

// viewFor snapshots the user's effective subject bits under its own read
// lock (released before query execution takes the lock again, avoiding
// recursive RLock).
func (s *Store) viewFor(user, mode string) (*dol.SubjectView, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, err := s.subject(user)
	if err != nil {
		return nil, err
	}
	mi, err := s.mode(mode)
	if err != nil {
		return nil, err
	}
	return s.ss.View(effectiveBits(s.dir, len(s.modes), mi, u)), nil
}

func (s *Store) combinedBit(subject string, mode string) (acl.SubjectID, error) {
	sub, err := s.subject(subject)
	if err != nil {
		return acl.InvalidSubject, err
	}
	mi, err := s.mode(mode)
	if err != nil {
		return acl.InvalidSubject, err
	}
	return acl.SubjectID(int(sub)*len(s.modes) + mi), nil
}

// Accessible reports whether the named subject alone (no group expansion)
// may access node n under the mode.
func (s *Store) Accessible(subject, mode string, n NodeID) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bit, err := s.combinedBit(subject, mode)
	if err != nil {
		return false, err
	}
	return s.ss.Accessible(xmltree.NodeID(n), bit)
}

// UserAccessible reports whether the user, including their transitive
// groups, may access node n under the mode (paper footnote 4).
func (s *Store) UserAccessible(user, mode string, n NodeID) (bool, error) {
	view, err := s.viewFor(user, mode) // locks internally
	if err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return view.Accessible(xmltree.NodeID(n))
}

// Commit is the durability handle of one committed update. The update's
// effects are visible to queries as soon as the updating call returns; the
// handle reports when (and whether) they became durable. The zero-cost
// handle of a store without a WAL is already resolved.
type Commit struct {
	s  *Store
	cw *storage.CommitWaiter // nil when there is nothing to flush
}

// Done returns a channel closed once the update is durable or its flush
// failed; consult Err afterwards.
func (c *Commit) Done() <-chan struct{} {
	if c.cw == nil {
		return closedDone
	}
	return c.cw.Done()
}

// Err returns the flush outcome. Valid only after Done is closed.
func (c *Commit) Err() error {
	if c.cw == nil {
		return nil
	}
	return c.cw.Err()
}

// Wait blocks until the update is durable and returns the flush outcome.
// A flush failure has already poisoned the store (Failed reports true);
// reopen to recover — the log decides which sealed batches survive.
func (c *Commit) Wait() error {
	if c.cw == nil {
		return nil
	}
	return c.cw.Wait()
}

var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// updateTxn runs fn as one user-visible atomic update and SEALS it with
// the metadata sidecar: on a write-ahead-logged pager it opens the
// outermost batch (the nok/dol layers' own batches nest inside), flushes
// every dirty buffer-pool frame into it, and moves the batch onto the
// flush queue — cheap, no I/O. The caller must hold the write lock, and
// must call finish AFTER releasing it: the expensive flush protocol runs
// there, outside s.mu, so queries never stall behind an updater's fsyncs.
//
// If the batch is rolled back or sealing fails after page writes were
// buffered, the in-memory store is ahead of what disk will ever hold; the
// store is then poisoned (see Store.failed) and must be reopened.
func (s *Store) updateTxn(fn func() error) (*Commit, error) {
	if s.failedLocked() {
		return nil, errStoreFailed
	}
	if s.wp == nil {
		if err := fn(); err != nil {
			return nil, err
		}
		return &Commit{s: s}, nil
	}
	if err := s.wp.Begin(); err != nil {
		return nil, err
	}
	runErr := fn()
	// Flush unconditionally: on success the dirty frames must join the
	// batch before commit; on failure they must join it before rollback so
	// the pager's dirty-abort report distinguishes a clean validation
	// failure from a discarded half-written update.
	flushErr := s.pool.FlushAll()
	if runErr == nil {
		runErr = flushErr
	}
	if runErr == nil {
		var meta []byte
		if meta, runErr = s.marshalMeta(); runErr == nil {
			cw, err := s.wp.SealCommit(meta)
			if err == nil {
				return &Commit{s: s, cw: cw}, nil
			}
			s.noteAbort(s.wp)
			return nil, err
		}
	}
	_ = s.wp.Rollback()
	s.noteAbort(s.wp)
	return nil, runErr
}

// lockUpdate acquires the write lock for one update running under
// durability mode d. On a journaled store a DurabilitySync update
// additionally takes commitMu, held until finish completes its inline
// flush, so concurrent Sync commits never coalesce into one group. Every
// lockUpdate must be paired with either failUpdate (update abandoned
// before updateTxn ran) or s.mu.Unlock-then-finish.
func (s *Store) lockUpdate(d Durability) {
	if d == DurabilitySync && s.wp != nil {
		s.commitMu.Lock()
	}
	s.mu.Lock()
}

// failUpdate abandons an update between lockUpdate and updateTxn: it
// releases whatever lockUpdate took and passes err through.
func (s *Store) failUpdate(d Durability, err error) error {
	s.mu.Unlock()
	if d == DurabilitySync && s.wp != nil {
		s.commitMu.Unlock()
	}
	return err
}

// finish completes a sealed update according to the durability mode. It
// must be called WITHOUT s.mu held — this is where the flush I/O happens
// (inline for DurabilitySync, on the background flusher for the others).
func (s *Store) finish(d Durability, c *Commit, err error) (*Commit, error) {
	if d == DurabilitySync && s.wp != nil {
		defer s.commitMu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	if c.cw == nil {
		return c, nil
	}
	switch d {
	case DurabilityAsync:
		s.wp.ScheduleFlush()
		return c, nil
	case DurabilityGrouped:
		s.wp.ScheduleFlush()
		return c, c.Wait()
	default: // DurabilitySync: the committer is its own flusher.
		// Flush's return is authoritative: the waiter resolves at the log
		// sync, before the apply/checkpoint tail, and a tail failure
		// poisons the store — a Sync caller must hear about it here.
		if err := s.wp.Flush(); err != nil {
			return c, err
		}
		return c, c.Wait()
	}
}

// AwaitDurable blocks until every update committed so far is durable — the
// collective barrier for DurabilityAsync (and a no-op for stores without a
// WAL or with nothing pending).
func (s *Store) AwaitDurable() error {
	s.mu.RLock()
	wp := s.wp
	s.mu.RUnlock()
	if wp == nil {
		return nil
	}
	return wp.FlushBarrier()
}

// noteAbort poisons the store when the pager reports that an abort
// discarded buffered writes. The caller must hold the write lock.
func (s *Store) noteAbort(tp storage.TxnPager) {
	type dirtyReporter interface{ LastAbortDirty() bool }
	if d, ok := tp.(dirtyReporter); ok && d.LastAbortDirty() {
		s.failed = true
	}
}

// SetAccess grants or revokes the subject's access to node n (or, with
// wholeSubtree, to n's entire subtree) under the mode — the §3.4
// accessibility updates, applied in place to the affected blocks only.
// Durability follows StoreOptions.Durability.
func (s *Store) SetAccess(subject, mode string, n NodeID, allowed, wholeSubtree bool) error {
	_, err := s.setAccess(s.opts.Durability, subject, mode, n, allowed, wholeSubtree)
	return err
}

// SetAccessAsync is SetAccess with DurabilityAsync regardless of the
// store's configured mode: it returns as soon as the update is applied and
// sealed (already visible to queries), and the Commit handle reports when
// it is durable. The motivating workload — bursts of ACL toggles from many
// users — commits through here and shares one group flush.
func (s *Store) SetAccessAsync(subject, mode string, n NodeID, allowed, wholeSubtree bool) (*Commit, error) {
	return s.setAccess(DurabilityAsync, subject, mode, n, allowed, wholeSubtree)
}

func (s *Store) setAccess(d Durability, subject, mode string, n NodeID, allowed, wholeSubtree bool) (*Commit, error) {
	s.lockUpdate(d)
	bit, err := s.combinedBit(subject, mode)
	if err != nil {
		return nil, s.failUpdate(d, err)
	}
	c, err := s.updateTxn(func() error {
		if wholeSubtree {
			return s.ss.SetSubtreeAccess(xmltree.NodeID(n), bit, allowed)
		}
		return s.ss.SetNodeAccess(xmltree.NodeID(n), bit, allowed)
	})
	s.mu.Unlock()
	return s.finish(d, c, err)
}

// AddUser registers a new user with no access anywhere — a codebook-only
// operation (§3.4).
func (s *Store) AddUser(name string) error {
	return s.addSubject(name, false, "")
}

// AddUserLike registers a new user whose rights match an existing
// subject's in every mode.
func (s *Store) AddUserLike(name, like string) error {
	return s.addSubject(name, false, like)
}

// AddGroup registers a new group with no access anywhere.
func (s *Store) AddGroup(name string) error {
	return s.addSubject(name, true, "")
}

func (s *Store) addSubject(name string, group bool, like string) error {
	d := s.opts.Durability
	s.lockUpdate(d)
	var likeID acl.SubjectID = acl.InvalidSubject
	if like != "" {
		var err error
		likeID, err = s.subject(like)
		if err != nil {
			return s.failUpdate(d, err)
		}
	}
	// Codebook-only update: no pages change, but the commit still journals
	// the refreshed metadata sidecar so the new subject survives a crash.
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error {
		var err error
		if group {
			_, err = s.dir.AddGroup(name)
		} else {
			_, err = s.dir.AddUser(name)
		}
		if err != nil {
			return err
		}
		numModes := len(s.modes)
		for m := 0; m < numModes; m++ {
			if likeID == acl.InvalidSubject {
				s.ss.AddSubject()
			} else {
				if _, err := s.ss.AddSubjectLike(acl.SubjectID(int(likeID)*numModes + m)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// AddMember records a group membership on the sealed store (affects only
// effective-rights expansion, not the encoding).
func (s *Store) AddMember(group, member string) error {
	d := s.opts.Durability
	s.lockUpdate(d)
	g, err := s.subject(group)
	if err != nil {
		return s.failUpdate(d, err)
	}
	m, err := s.subject(member)
	if err != nil {
		return s.failUpdate(d, err)
	}
	// Directory-only update; the commit journals the refreshed sidecar.
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error { return s.dir.AddMember(g, m) })
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// InsertXML inserts the XML fragment as a new child of parent (after the
// existing child `after`, or first when after is InvalidNode). Per the
// paper's update model the inserted nodes arrive with access controls:
// every fragment node receives the access control list currently in force
// at the parent node.
func (s *Store) InsertXML(parent, after NodeID, fragment string) error {
	d := s.opts.Durability
	s.lockUpdate(d)
	frag, err := xmltree.ParseString(fragment)
	if err != nil {
		return s.failUpdate(d, err)
	}
	code, err := s.ss.Store().AccessCodeAt(xmltree.NodeID(parent))
	if err != nil {
		return s.failUpdate(d, err)
	}
	row := s.ss.Codebook().ACL(code)
	fm := acl.NewMatrix(frag.Len(), s.ss.Codebook().NumSubjects())
	for n := 0; n < frag.Len(); n++ {
		fm.SetRow(xmltree.NodeID(n), row)
	}
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error {
		return s.ss.InsertSubtree(xmltree.NodeID(parent), xmltree.NodeID(after), frag, fm)
	})
	if err == nil {
		s.idxDirty = true
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// Delete removes node n's subtree.
func (s *Store) Delete(n NodeID) error {
	s.lockUpdate(s.opts.Durability)
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error { return s.ss.DeleteSubtree(xmltree.NodeID(n)) })
	if err == nil {
		s.idxDirty = true
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// Move relocates node n's subtree under newParent (after the sibling
// `after`, or first when InvalidNode), preserving its access controls.
func (s *Store) Move(n, newParent, after NodeID) error {
	s.lockUpdate(s.opts.Durability)
	s.invalidateMetaHead()
	c, err := s.updateTxn(func() error {
		return s.ss.MoveSubtree(xmltree.NodeID(n), xmltree.NodeID(newParent), xmltree.NodeID(after))
	})
	if err == nil {
		s.idxDirty = true
	}
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// Vacuum performs the paper's lazy redundancy correction (§3.4): it
// rewrites the embedded access codes canonically, merging transitions made
// redundant by earlier updates and reclaiming duplicate codebook entries.
// It is a full-document maintenance pass.
func (s *Store) Vacuum() error {
	s.lockUpdate(s.opts.Durability)
	s.invalidateMetaHead()
	c, err := s.updateTxn(s.ss.Vacuum)
	s.mu.Unlock()
	_, err = s.finish(s.opts.Durability, c, err)
	return err
}

// NumNodes returns the document's node count.
func (s *Store) NumNodes() int { return s.ss.Store().NumNodes() }

// Tag returns the tag of node n.
func (s *Store) Tag(n NodeID) (string, error) {
	code, err := s.ss.Store().Tag(xmltree.NodeID(n))
	if err != nil {
		return "", err
	}
	return s.ss.Store().TagName(code), nil
}

// Value returns the text value of node n ("" when values are not stored).
func (s *Store) Value(n NodeID) (string, error) {
	vs := s.ss.Store().Values()
	if vs == nil {
		return "", nil
	}
	return vs.Value(xmltree.NodeID(n))
}

// Modes lists the registered action mode names.
func (s *Store) Modes() []string { return append([]string(nil), s.modes...) }

// Subjects lists the subject names in SubjectID order.
func (s *Store) Subjects() []string {
	out := make([]string, s.dir.Len())
	for i := range out {
		out[i] = s.dir.Name(acl.SubjectID(i))
	}
	return out
}

// Stats summarizes the physical representation, the quantities of the
// paper's §5.1 storage analysis.
type Stats struct {
	Nodes           int
	StructurePages  int
	Transitions     int
	CodebookEntries int
	CodebookBytes   int
	DirectoryBytes  int
	// SummaryBytes is the in-memory footprint of the per-page structural
	// summaries driving structure-aware page skipping.
	SummaryBytes int
	Pool         storage.PoolStats
	IO           storage.IOStats
	// DecodeCache reports the decoded-block cache's counters.
	DecodeCache CacheStats
}

// CacheStats mirror the decoded-block cache counters: hit/miss/eviction
// counts plus the cache's current and budgeted size in (estimated) bytes.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
	Budget    int64
}

// SkipStats count the page reads one query avoided, by cause: pages
// skipped because the directory proves them fully inaccessible to the
// subject (Access), pages skipped because the per-page structural
// summaries prove them irrelevant to the pattern (Struct), and root
// candidates rejected from the directory alone (Candidates).
type SkipStats struct {
	AccessPages int64
	StructPages int64
	Candidates  int64
}

// Stats collects the store's current statistics. Note that the transition
// count requires a full walk of the structure store, which itself runs
// through the buffer pool; use PoolStats or DecodeCacheStats for cheap,
// walk-free counters around individual queries.
func (s *Store) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tr, err := s.ss.TransitionCount()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Nodes:           s.ss.Store().NumNodes(),
		StructurePages:  s.ss.Store().NumPages(),
		Transitions:     tr,
		CodebookEntries: s.ss.Codebook().Len(),
		CodebookBytes:   s.ss.Codebook().Bytes(),
		DirectoryBytes:  s.ss.Store().DirectoryBytes(),
		SummaryBytes:    s.ss.Store().SummaryBytes(),
		Pool:            s.pool.Stats(),
		IO:              s.pool.Pager().Stats(),
		DecodeCache:     s.DecodeCacheStats(),
	}, nil
}

// PoolStats returns the buffer pool's counters without touching any page —
// safe to sample before and after a query to measure its physical reads.
func (s *Store) PoolStats() storage.PoolStats { return s.pool.Stats() }

// DecodeCacheStats returns the decoded-block cache's counters without
// touching any page.
func (s *Store) DecodeCacheStats() CacheStats {
	ds := s.ss.Store().DecodeCacheStats()
	return CacheStats{
		Hits:      ds.Hits,
		Misses:    ds.Misses,
		Evictions: ds.Evictions,
		Entries:   ds.Entries,
		Bytes:     ds.Bytes,
		Budget:    ds.Budget,
	}
}

// Close flushes and releases the store; sealed-but-unflushed async commits
// are flushed on the way out (their Commit handles resolve). A poisoned
// store (see Failed) is closed without flushing: its buffers were built
// against discarded batch state, and writing them outside a batch would
// tear the on-disk image that WAL recovery otherwise guarantees intact.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failedLocked() {
		return s.pool.Pager().Close()
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	return s.pool.Pager().Close()
}
