package securexml

import (
	"context"
	"sync"
	"testing"
)

// Interleave property for path-summary routing under MVCC: streaming
// cursors pin snapshots while structural writers continuously insert and
// delete a fragment (each commit rebuilding the maintained path summary
// incrementally). For every pinned snapshot, a drain with routing enabled
// must be byte-identical to a drain of the same snapshot with routing
// disabled — the summary a query compiles against can never mix states.
// Run with -race in CI.
func TestPathRoutingUnderConcurrentWriters(t *testing.T) {
	const q = "//listitem//keyword"
	s := snapStore(t, snapFixtureXML(t, 1600), StoreOptions{PageSize: 512, PoolPages: 256})
	defer s.Close()

	parent := lastVisibleNode(t, s, "//description")
	const frag = "<parlist><listitem><keyword>routeprobe</keyword></listitem></parlist>"
	fragRoot := parent + 1 // InsertXML with after=InvalidNode prepends

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.InsertXML(parent, InvalidNode, frag); err != nil {
				t.Error(err)
				return
			}
			if err := s.Delete(fragRoot); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const readers = 4
	const rounds = 12
	var rg sync.WaitGroup
	for g := 0; g < readers; g++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for r := 0; r < rounds; r++ {
				sp, err := s.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				on, err := drainSnapCursor(t, s, q, QueryOptions{Snapshot: sp})
				if err != nil {
					sp.Close()
					t.Error(err)
					return
				}
				off, err := drainSnapCursor(t, s, q, QueryOptions{Snapshot: sp, DisablePathSummary: true})
				sp.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if on != off {
					t.Errorf("snapshot drain diverged with path routing:\non:  %s\noff: %s", on, off)
					return
				}
			}
		}()
	}
	rg.Wait()
	close(stop)
	writers.Wait()

	// Settled state: the two arms still agree, and the store's maintained
	// summary still matches a from-scratch rebuild (CheckConsistency runs
	// the oracle at the nok layer).
	on, err := drainSnapCursor(t, s, q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := drainSnapCursor(t, s, q, QueryOptions{DisablePathSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	if on != off {
		t.Fatalf("settled drain diverged:\non:  %s\noff: %s", on, off)
	}
}

// A structurally unsatisfiable twig — every tag exists, but no root-to-leaf
// label path arranges them — must short-circuit at compile time: zero pages
// pinned, the PathEmpty stat raised, and the store counter incremented.
func TestUnsatisfiableQueryShortCircuit(t *testing.T) {
	const q = "/site/people/person/parlist"
	s := snapStore(t, snapFixtureXML(t, 1600), StoreOptions{PageSize: 512})
	defer s.Close()
	ctx := context.Background()

	// Both tags must exist for the test to mean anything.
	for _, probe := range []string{"//person", "//parlist"} {
		if ms, err := s.QueryUnrestricted(probe); err != nil || len(ms) == 0 {
			t.Fatalf("fixture lacks %s matches (err %v)", probe, err)
		}
	}

	before := s.MetricsSnapshot().Get("query_path_empty_total")
	tr := NewQueryTrace()
	cur, err := s.QueryCursor(ctx, "u", "read", q, QueryOptions{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if m, ok, err := cur.Next(ctx); err != nil || ok {
		t.Fatalf("unsatisfiable query yielded %v (ok=%v, err=%v)", m, ok, err)
	}
	sk := cur.SkipStats()
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if sk.PathEmpty != 1 {
		t.Errorf("PathEmpty = %d, want 1", sk.PathEmpty)
	}
	if got := tr.PageReads(); got != 0 {
		t.Errorf("short-circuited query pinned %d pages, want 0", got)
	}
	if got := s.MetricsSnapshot().Get("query_path_empty_total") - before; got != 1 {
		t.Errorf("query_path_empty_total advanced by %d, want 1", got)
	}

	// Routing off: same (empty) answer, but the evaluator actually runs.
	off, err := s.QueryCtx(ctx, "u", "read", q, QueryOptions{DisablePathSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(off) != 0 {
		t.Fatalf("routing-off arm returned %d answers, want 0", len(off))
	}
}

// The per-snapshot shape cache: repeating a query against an unchanged
// store hits, any commit (even ACL-only, which shadow-pages the block
// directory) forces a recompile, and hits never change answers.
func TestMaskCacheCounters(t *testing.T) {
	const q = "//listitem//keyword"
	s := snapStore(t, snapFixtureXML(t, 1600), StoreOptions{PageSize: 512})
	defer s.Close()

	counter := func(name string) int64 { return s.MetricsSnapshot().Get(name) }
	first, err := drainSnapCursor(t, s, q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	misses := counter("skipmask_compile_misses")
	if misses == 0 {
		t.Fatal("first query compiled no shape")
	}
	h0 := counter("skipmask_compile_hits")
	again, err := drainSnapCursor(t, s, q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("cached shape changed answers")
	}
	if got := counter("skipmask_compile_hits") - h0; got != 1 {
		t.Errorf("repeat query recorded %d cache hits, want 1", got)
	}
	if got := counter("skipmask_compile_misses") - misses; got != 0 {
		t.Errorf("repeat query recompiled %d times, want 0", got)
	}

	// An ACL-only commit bumps the snapshot sequence: the stale entry must
	// miss even though the indexState (and thus the cache) is shared.
	toggle := firstNode(t, s, q)
	if err := s.SetAccess("staff", "read", toggle, false, false); err != nil {
		t.Fatal(err)
	}
	m0 := counter("skipmask_compile_misses")
	after, err := drainSnapCursor(t, s, q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after == first {
		t.Fatal("revoke changed nothing; fixture broken")
	}
	if got := counter("skipmask_compile_misses") - m0; got != 1 {
		t.Errorf("post-commit query recompiled %d times, want 1", got)
	}
}
