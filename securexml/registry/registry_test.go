package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dolxml/securexml"
)

// buildTenant seals and saves one small store under root/id. Each tenant's
// document carries its marker, so cross-tenant answer mixups are visible in
// result bytes, and each has a secret subtree alice cannot read.
func buildTenant(t testing.TB, root, id string, marker int) {
	t.Helper()
	dir := filepath.Join(root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "<doc tenant=\"%s\">", id)
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&sb, "<item><public>t%d-p%d</public><secret>t%d-s%d</secret></item>", marker, i, marker, i)
	}
	sb.WriteString("</doc>")
	s, err := securexml.NewBuilder().
		LoadXMLString(sb.String()).
		AddUser("alice").
		AddUser("bob").
		Grant("alice", "read", "/doc").
		Revoke("alice", "read", "//secret").
		Grant("bob", "read", "/doc").
		Seal(securexml.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func buildTenants(t testing.TB, n int) (string, []string) {
	t.Helper()
	root := t.TempDir()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("tenant-%02d", i)
		buildTenant(t, root, ids[i], i)
	}
	return root, ids
}

// closeRegistry closes r with a bounded deadline so a failing test with a
// leaked handle reports instead of deadlocking in the deferred close.
func closeRegistry(t testing.TB, r *Registry) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Errorf("registry close: %v", err)
	}
}

// queryBytes evaluates alice's canonical query through a store and returns
// the JSON-encoded answer — the byte-identity fingerprint used across
// eviction/drain comparisons.
func queryBytes(t testing.TB, s *securexml.Store) string {
	t.Helper()
	ms, err := s.Query("alice", "read", "//public")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestTenantPath(t *testing.T) {
	root := t.TempDir()
	for _, ok := range []string{"a", "tenant-01", "x_y-z9", strings.Repeat("a", 64)} {
		p, err := TenantPath(root, ok)
		if err != nil {
			t.Fatalf("TenantPath(%q) = %v", ok, err)
		}
		if p != filepath.Join(root, ok) {
			t.Fatalf("TenantPath(%q) = %q", ok, p)
		}
	}
	for _, bad := range []string{
		"", "..", "../x", "a/b", "a\\b", ".hidden", "-dash", "_u", "UPPER",
		"has space", "dot.dot", strings.Repeat("a", 65), "a\x00b", "a\nb",
	} {
		if _, err := TenantPath(root, bad); err == nil {
			t.Fatalf("TenantPath(%q) accepted", bad)
		}
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	root, ids := buildTenants(t, 6)
	r, err := New(Options{Root: root, MaxOpen: 3, PoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRegistry(t, r)

	want := make(map[string]string)
	for _, id := range ids {
		h, err := r.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = queryBytes(t, h.Store())
		h.Close()
		if n := r.OpenCount(); n > 3 {
			t.Fatalf("%d stores open with MaxOpen=3", n)
		}
	}
	snap := r.MetricsSnapshot()
	if snap.Get("evictions_total") < 3 {
		t.Fatalf("evictions_total = %d, want >= 3", snap.Get("evictions_total"))
	}
	// Reopened tenants answer identically to their first (pre-eviction) open.
	for _, id := range ids {
		h, err := r.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := queryBytes(t, h.Store()); got != want[id] {
			t.Fatalf("tenant %s answer changed across eviction:\n got %s\nwant %s", id, got, want[id])
		}
		h.Close()
	}
}

// TestRegistryPinBlocksEviction holds a handle on one tenant while churning
// enough others to force evictions: the pinned tenant must never be closed
// under the handle, and once released and evicted its pool pins drop to 0.
func TestRegistryPinBlocksEviction(t *testing.T) {
	root, ids := buildTenants(t, 5)
	r, err := New(Options{Root: root, MaxOpen: 2, PoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRegistry(t, r)

	pinned, err := r.Acquire(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	want := queryBytes(t, pinned.Store())
	for _, id := range ids[1:] {
		h, err := r.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
	}
	// The pinned store is still the same open store and still answers.
	if got := queryBytes(t, pinned.Store()); got != want {
		t.Fatalf("pinned tenant answer changed under eviction pressure:\n got %s\nwant %s", got, want)
	}
	st := pinned.Store()
	if err := pinned.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Evict(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := st.PoolPinned(); got != 0 {
		t.Fatalf("evicted tenant still pins %d frames", got)
	}
}

// TestRegistryDrainByteIdentical evicts a tenant while a handle is open:
// the handle keeps answering byte-identically (drain), a re-acquire before
// the drain completes revives the same store instead of double-opening the
// directory, and the store only closes at the last release.
func TestRegistryDrainByteIdentical(t *testing.T) {
	root, ids := buildTenants(t, 2)
	r, err := New(Options{Root: root, MaxOpen: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRegistry(t, r)

	h1, err := r.Acquire(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	want := queryBytes(t, h1.Store())
	if err := r.Evict(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := queryBytes(t, h1.Store()); got != want {
		t.Fatalf("draining store answer drifted:\n got %s\nwant %s", got, want)
	}
	snap := r.MetricsSnapshot()
	if snap.Get("drains_total") != 1 {
		t.Fatalf("drains_total = %d, want 1", snap.Get("drains_total"))
	}

	// Re-acquire mid-drain: must revive the same store, not reopen the dir.
	h2, err := r.Acquire(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if h2.Store() != h1.Store() {
		t.Fatal("re-acquire during drain opened a second store over the same directory")
	}
	snap = r.MetricsSnapshot()
	if snap.Get("revives_total") != 1 {
		t.Fatalf("revives_total = %d, want 1", snap.Get("revives_total"))
	}
	if snap.Get("opens_total") != 1 {
		t.Fatalf("opens_total = %d, want 1 (no double-open)", snap.Get("opens_total"))
	}
	h1.Close()
	h2.Close()

	// Now a clean evict → close; the next acquire is a fresh open.
	if err := r.Evict(ids[0]); err != nil {
		t.Fatal(err)
	}
	h3, err := r.Acquire(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Close()
	if got := queryBytes(t, h3.Store()); got != want {
		t.Fatalf("reopened store answer drifted")
	}
	if got := r.MetricsSnapshot().Get("opens_total"); got != 2 {
		t.Fatalf("opens_total = %d, want 2 (fresh open after clean evict)", got)
	}
}

// TestRegistryBudgetSharing checks the fair-share invariant: however many
// tenants are open, the sum of their pool capacities (in bytes) never
// exceeds the global budget, and every tenant keeps at least MinPoolPages.
func TestRegistryBudgetSharing(t *testing.T) {
	root, ids := buildTenants(t, 6)
	const budget = 512 * 1024
	r, err := New(Options{Root: root, MaxOpen: 6, PoolBytes: budget, MinPoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRegistry(t, r)

	var handles []*Handle
	for _, id := range ids {
		h, err := r.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		queryBytes(t, h.Store()) // fault pages in
		if use := r.PoolBytesInUse(); use > budget {
			t.Fatalf("pool bytes in use %d exceeds budget %d with %d tenants", use, budget, len(handles))
		}
	}
	for _, h := range handles {
		h.Close()
	}
}

// TestRegistryRace is the satellite race test: concurrent acquire/query,
// evictions, and metric scrapes over more tenants than MaxOpen, under
// -race. In-flight queries pin stores against eviction, so every query
// must succeed with its own tenant's bytes; the shared budget must hold at
// every sample; and close drains cleanly.
func TestRegistryRace(t *testing.T) {
	const tenants = 8
	root, ids := buildTenants(t, tenants)
	const budget = 1 << 20
	r, err := New(Options{Root: root, MaxOpen: 3, PoolBytes: budget, MinPoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}

	want := make(map[string]string)
	for _, id := range ids {
		h, err := r.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = queryBytes(t, h.Store())
		h.Close()
	}

	iters := 150
	if testing.Short() {
		iters = 30
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				id := ids[rng.Intn(tenants)]
				h, err := r.Acquire(id)
				if err != nil {
					report(fmt.Errorf("acquire %s: %w", id, err))
					return
				}
				ms, err := h.Store().Query("alice", "read", "//public")
				if err != nil {
					report(fmt.Errorf("query %s: %w", id, err))
					h.Close()
					return
				}
				b, _ := json.Marshal(ms)
				if string(b) != want[id] {
					report(fmt.Errorf("tenant %s: answer drifted under concurrency", id))
				}
				h.Close()
			}
		}(w)
	}
	// Evictor: randomly push tenants out while queries are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < iters; i++ {
			if err := r.Evict(ids[rng.Intn(tenants)]); err != nil {
				report(fmt.Errorf("evict: %w", err))
				return
			}
		}
	}()
	// Budget sampler + metrics scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if use := r.PoolBytesInUse(); use > budget {
				report(fmt.Errorf("pool bytes in use %d exceeds budget %d", use, budget))
				return
			}
			var sb strings.Builder
			if err := r.WriteMetricsPrometheus(&sb); err != nil {
				report(fmt.Errorf("metrics: %w", err))
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := r.Acquire(ids[0]); err == nil {
		t.Fatal("acquire succeeded on a closed registry")
	}
}

// TestRegistryCloseWaitsForDrain verifies Close blocks on busy tenants
// until their last handle releases (or the context expires).
func TestRegistryCloseWaitsForDrain(t *testing.T) {
	root, ids := buildTenants(t, 1)
	r, err := New(Options{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire(ids[0])
	if err != nil {
		t.Fatal(err)
	}

	// With a busy tenant and an immediate deadline, Close reports it.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	err = r.Close(ctx)
	cancel()
	if err == nil || !strings.Contains(err.Error(), "still busy") {
		t.Fatalf("close with busy tenant = %v, want busy error", err)
	}
	// The handle still works (drain), and release closes the store.
	if got := queryBytes(t, h.Store()); got == "" {
		t.Fatal("draining store stopped answering")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(r.Tenants()); n != 0 {
		t.Fatalf("%d tenants left after final release", n)
	}
}
