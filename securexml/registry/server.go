package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dolxml/securexml"
)

// Token is one auth credential: it names the tenant and subject a bearer
// may query as, and whether it may run unrestricted (admin) queries. The
// serve path is multi-subject by construction — the token, not a query
// parameter, decides whose view a query evaluates under.
type Token struct {
	Tenant  string `json:"tenant"`
	Subject string `json:"subject"`
	Admin   bool   `json:"admin,omitempty"`
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// Tokens maps bearer-token strings to identities. A nil map runs the
	// server in open trusted mode (single-operator use, like the classic
	// one-store serve): any tenant/user may be named in the query string.
	Tokens map[string]Token
	// RatePerSec is the sustained per-principal query rate (token bucket;
	// 0 disables rate limiting). The principal is the bearer token, or the
	// client IP in open mode.
	RatePerSec float64
	// Burst is the bucket depth (default max(1, round(RatePerSec))).
	Burst int
	// DrainTimeout bounds how long Shutdown waits for in-flight requests
	// (default 10s).
	DrainTimeout time.Duration
	// AccessLog, when set, receives one JSON line per /query and /explain
	// request: timestamp, tenant, subject, HTTP status, latency, pages
	// pinned, answers and the normalized query fingerprint. Lines are
	// single Writes serialized by the server, so the writer need not be
	// goroutine-safe.
	AccessLog io.Writer
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.Burst < 1 {
		o.Burst = int(o.RatePerSec + 0.5)
		if o.Burst < 1 {
			o.Burst = 1
		}
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// bucket is one principal's token bucket.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (b *bucket) allow(rate float64, burst int, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += rate * now.Sub(b.last).Seconds()
	b.last = now
	if max := float64(burst); b.tokens > max {
		b.tokens = max
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Server fronts a Registry over HTTP:
//
//	/query       — evaluate an XPath under a subject's view (auth-scoped)
//	/explain     — the query's compiled plan; analyze=1 executes once and
//	               adds per-operator attribution (same auth as /query)
//	/metrics     — registry metrics + per-tenant store metrics (Prometheus)
//	/debug/vars  — registry metrics as JSON
//	/tenants     — open/draining tenant list as JSON
//	/healthz     — liveness
//
// Every request pins its tenant's store through a registry Handle, so LRU
// eviction never closes a store a request is reading. Shutdown refuses new
// requests, drains in-flight ones bounded by DrainTimeout, then closes the
// registry so every store's WAL checkpoint lands.
type Server struct {
	reg  *Registry
	opts ServerOptions
	mux  *http.ServeMux

	closing  atomic.Bool
	inflight sync.WaitGroup

	bmu     sync.Mutex
	buckets map[string]*bucket

	logMu sync.Mutex
}

// NewServer wraps reg in the multi-tenant HTTP front end.
func NewServer(reg *Registry, opts ServerOptions) *Server {
	s := &Server{
		reg:     reg,
		opts:    opts.withDefaults(),
		mux:     http.NewServeMux(),
		buckets: map[string]*bucket{},
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WriteMetricsPrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	s.mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := s.reg.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	s.mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(s.reg.Tenants())
	})
	return s
}

// ServeHTTP implements http.Handler. Requests arriving after Shutdown has
// begun get 503 without touching the registry.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	// Re-check after joining the in-flight set: Shutdown's closing store
	// happens-before its Wait, so a request seen here is either refused or
	// fully drained — never abandoned mid-flight.
	if s.closing.Load() {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// identity resolves the request's auth token into (tenant, subject, admin).
// In open mode (no token table) the query string is trusted.
func (s *Server) identity(r *http.Request) (Token, string, error) {
	raw := ""
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
		raw = strings.TrimPrefix(h, "Bearer ")
	} else {
		raw = r.URL.Query().Get("token")
	}
	if s.opts.Tokens == nil {
		q := r.URL.Query()
		key := raw
		if key == "" {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			key = "anon:" + host
		}
		return Token{Tenant: q.Get("tenant"), Subject: q.Get("user"), Admin: true}, key, nil
	}
	tok, ok := s.opts.Tokens[raw]
	if !ok {
		return Token{}, "", fmt.Errorf("missing or unknown token")
	}
	return tok, raw, nil
}

// allow applies the per-principal token bucket.
func (s *Server) allow(key string) bool {
	if s.opts.RatePerSec <= 0 {
		return true
	}
	s.bmu.Lock()
	b, ok := s.buckets[key]
	if !ok {
		b = &bucket{tokens: float64(s.opts.Burst), last: time.Now()}
		s.buckets[key] = b
	}
	s.bmu.Unlock()
	return b.allow(s.opts.RatePerSec, s.opts.Burst, time.Now())
}

// queryRequest is one authenticated, parsed /query or /explain request.
type queryRequest struct {
	tok   Token
	user  string
	mode  string
	xpath string
	opts  securexml.QueryOptions
}

// parseQuery authenticates and parses the request's query parameters. On
// failure it writes the error response and returns ok == false.
func (s *Server) parseQuery(w http.ResponseWriter, r *http.Request) (req queryRequest, ok bool) {
	tok, key, err := s.identity(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return req, false
	}
	if !s.allow(key) {
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return req, false
	}
	q := r.URL.Query()
	// The token binds the identity: explicit parameters may restate it but
	// not change it. (Open mode issues a fully trusted token above.)
	if t := q.Get("tenant"); t != "" && t != tok.Tenant {
		http.Error(w, "token is not valid for this tenant", http.StatusForbidden)
		return req, false
	}
	user := tok.Subject
	if u := q.Get("user"); u != "" {
		if u != tok.Subject && !tok.Admin {
			http.Error(w, "token is not valid for this subject", http.StatusForbidden)
			return req, false
		}
		user = u
	}
	opts := securexml.QueryOptions{
		Pruned:             q.Get("pruned") != "",
		DisablePathSummary: q.Get("nopathsummary") != "",
	}
	if q.Get("admin") != "" {
		if !tok.Admin {
			http.Error(w, "token may not run unrestricted queries", http.StatusForbidden)
			return req, false
		}
		opts.Unrestricted = true
	}
	if lim := q.Get("limit"); lim != "" {
		fmt.Sscanf(lim, "%d", &opts.Limit)
	}
	mode := q.Get("mode")
	if mode == "" {
		mode = "read"
	}
	if tok.Tenant == "" {
		http.Error(w, "no tenant specified", http.StatusBadRequest)
		return req, false
	}
	return queryRequest{tok: tok, user: user, mode: mode, xpath: q.Get("xpath"), opts: opts}, true
}

// logAccess emits one access-log line (a single serialized Write).
func (s *Server) logAccess(req queryRequest, endpoint string, status int, elapsed time.Duration, qt *securexml.QueryTrace, answers int) {
	w := s.opts.AccessLog
	if w == nil {
		return
	}
	fp, _ := securexml.QueryFingerprint(req.xpath, req.opts)
	line := struct {
		At          string `json:"at"`
		Endpoint    string `json:"endpoint"`
		Tenant      string `json:"tenant"`
		Subject     string `json:"subject"`
		XPath       string `json:"xpath"`
		Status      int    `json:"status"`
		LatencyUs   int64  `json:"latency_us"`
		Pages       int64  `json:"pages"`
		Answers     int    `json:"answers"`
		Fingerprint string `json:"fingerprint,omitempty"`
	}{
		At:          time.Now().UTC().Format(time.RFC3339Nano),
		Endpoint:    endpoint,
		Tenant:      req.tok.Tenant,
		Subject:     req.user,
		XPath:       req.xpath,
		Status:      status,
		LatencyUs:   elapsed.Microseconds(),
		Pages:       qt.PageReads(),
		Answers:     answers,
		Fingerprint: fp,
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	s.logMu.Lock()
	w.Write(buf)
	s.logMu.Unlock()
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := s.parseQuery(w, r)
	if !ok {
		return
	}
	h, err := s.reg.Acquire(req.tok.Tenant)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer h.Close()
	var qt *securexml.QueryTrace
	if s.opts.AccessLog != nil && req.opts.Trace == nil {
		// The log line reports pages pinned; the counting trace provides
		// them without retaining an event log.
		qt = securexml.NewCountingQueryTrace()
		req.opts.Trace = qt
	}
	start := time.Now()
	ms, err := h.Store().QueryCtx(r.Context(), req.user, req.mode, req.xpath, req.opts)
	if err != nil {
		s.logAccess(req, "/query", http.StatusBadRequest, time.Since(start), qt, 0)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.logAccess(req, "/query", http.StatusOK, time.Since(start), qt, len(ms))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(ms)
}

// handleExplain serves the compiled query plan without executing the
// query; with analyze=1 it executes once and returns the plan annotated
// with per-operator attribution. format=text renders either as a report.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, ok := s.parseQuery(w, r)
	if !ok {
		return
	}
	h, err := s.reg.Acquire(req.tok.Tenant)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer h.Close()
	q := r.URL.Query()
	asText := q.Get("format") == "text"
	start := time.Now()
	if q.Get("analyze") != "" {
		an := &securexml.QueryAnalysis{}
		req.opts.Analyze = an
		_, err := h.Store().QueryCtx(r.Context(), req.user, req.mode, req.xpath, req.opts)
		if err != nil {
			s.logAccess(req, "/explain", http.StatusBadRequest, time.Since(start), nil, 0)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.logAccess(req, "/explain", http.StatusOK, time.Since(start), nil, 0)
		writeExplain(w, asText, an.WriteText, an.WriteJSON)
		return
	}
	plan, err := h.Store().Explain(r.Context(), req.user, req.mode, req.xpath, req.opts)
	if err != nil {
		s.logAccess(req, "/explain", http.StatusBadRequest, time.Since(start), nil, 0)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.logAccess(req, "/explain", http.StatusOK, time.Since(start), nil, 0)
	writeExplain(w, asText, plan.WriteText, plan.WriteJSON)
}

func writeExplain(w http.ResponseWriter, asText bool, text, js func(io.Writer) error) {
	if asText {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := text(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := js(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Shutdown stops admitting requests, waits for in-flight ones (bounded by
// DrainTimeout), then closes the registry so every open store flushes and
// its WAL checkpoint lands. Stragglers past the deadline are reported but
// their stores still close when their last handle does (drain semantics).
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	deadline := time.NewTimer(s.opts.DrainTimeout)
	defer deadline.Stop()
	var drainErr error
	select {
	case <-drained:
	case <-deadline.C:
		drainErr = fmt.Errorf("registry: shutdown drain deadline exceeded")
	case <-ctx.Done():
		drainErr = ctx.Err()
	}
	if err := s.reg.Close(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}
