package registry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, tenants int, opts ServerOptions) (*Server, []string, *httptest.Server) {
	t.Helper()
	root, ids := buildTenants(t, tenants)
	r, err := New(Options{Root: root, MaxOpen: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r, opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ids, ts
}

func get(t *testing.T, url string, hdr map[string]string) (int, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestServerAuth(t *testing.T) {
	tokens := map[string]Token{
		"alice-key": {Tenant: "tenant-00", Subject: "alice"},
		"bob-key":   {Tenant: "tenant-01", Subject: "bob"},
		"admin-key": {Tenant: "tenant-00", Subject: "alice", Admin: true},
	}
	s, _, ts := newTestServer(t, 2, ServerOptions{Tokens: tokens})
	defer s.Shutdown(context.Background())

	// No token → 401.
	if code, _ := get(t, ts.URL+"/query?xpath=//public", nil); code != http.StatusUnauthorized {
		t.Fatalf("no token: %d", code)
	}
	// Unknown token → 401.
	if code, _ := get(t, ts.URL+"/query?xpath=//public&token=nope", nil); code != http.StatusUnauthorized {
		t.Fatalf("bad token: %d", code)
	}
	// Valid token via Authorization header: subject comes from the token.
	code, body := get(t, ts.URL+"/query?xpath=//public", map[string]string{"Authorization": "Bearer alice-key"})
	if code != http.StatusOK {
		t.Fatalf("alice query: %d %s", code, body)
	}
	if !strings.Contains(body, "t0-p0") {
		t.Fatalf("alice answer missing tenant-00 content: %s", body)
	}
	// alice cannot read secrets — the view is subject-bound.
	_, body = get(t, ts.URL+"/query?xpath=//secret", map[string]string{"Authorization": "Bearer alice-key"})
	if strings.Contains(body, "t0-s0") {
		t.Fatalf("alice saw a secret: %s", body)
	}
	// Token pinned to another tenant cannot name this one.
	if code, _ = get(t, ts.URL+"/query?xpath=//public&tenant=tenant-00&token=bob-key", nil); code != http.StatusForbidden {
		t.Fatalf("cross-tenant: %d", code)
	}
	// Non-admin token cannot switch subject or run unrestricted.
	if code, _ = get(t, ts.URL+"/query?xpath=//secret&user=bob&token=alice-key", nil); code != http.StatusForbidden {
		t.Fatalf("subject switch: %d", code)
	}
	if code, _ = get(t, ts.URL+"/query?xpath=//secret&admin=1&token=alice-key", nil); code != http.StatusForbidden {
		t.Fatalf("non-admin unrestricted: %d", code)
	}
	// Admin token may do both.
	code, body = get(t, ts.URL+"/query?xpath=//secret&admin=1&token=admin-key", nil)
	if code != http.StatusOK || !strings.Contains(body, "t0-s0") {
		t.Fatalf("admin unrestricted: %d %s", code, body)
	}
	if code, _ = get(t, ts.URL+"/query?xpath=//public&user=bob&token=admin-key", nil); code != http.StatusOK {
		t.Fatalf("admin subject switch: %d", code)
	}
	// Unknown tenant on an open-mode server 404s rather than creating dirs.
	if code, _ = get(t, ts.URL+"/tenants", nil); code != http.StatusOK {
		t.Fatalf("/tenants: %d", code)
	}
}

func TestServerOpenMode(t *testing.T) {
	s, ids, ts := newTestServer(t, 1, ServerOptions{})
	defer s.Shutdown(context.Background())
	code, body := get(t, ts.URL+"/query?tenant="+ids[0]+"&user=alice&xpath=//public", nil)
	if code != http.StatusOK || !strings.Contains(body, "t0-p0") {
		t.Fatalf("open mode query: %d %s", code, body)
	}
	// Traversal attempts die in TenantPath, not on the filesystem.
	if code, _ := get(t, ts.URL+"/query?tenant=../etc&user=alice&xpath=//public", nil); code != http.StatusNotFound {
		t.Fatalf("traversal tenant: %d", code)
	}
	if code, _ := get(t, ts.URL+"/query?user=alice&xpath=//public", nil); code != http.StatusBadRequest {
		t.Fatalf("missing tenant: %d", code)
	}
	// Metrics split by tenant after traffic.
	code, body = get(t, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(body, "dolxml_registry_opens_total") {
		t.Fatalf("missing registry metrics: %s", body[:200])
	}
	if !strings.Contains(body, "dolxml_tenant_tenant_00_query_total") &&
		!strings.Contains(body, "dolxml_tenant_tenant_00_") {
		t.Fatalf("missing per-tenant metrics section:\n%s", body)
	}
}

func TestServerRateLimit(t *testing.T) {
	tokens := map[string]Token{"k1": {Tenant: "tenant-00", Subject: "alice"}}
	s, _, ts := newTestServer(t, 1, ServerOptions{Tokens: tokens, RatePerSec: 0.001, Burst: 2})
	defer s.Shutdown(context.Background())
	codes := []int{}
	for i := 0; i < 4; i++ {
		code, _ := get(t, ts.URL+"/query?xpath=//public&token=k1", nil)
		codes = append(codes, code)
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("burst requests rejected: %v", codes)
	}
	if codes[2] != http.StatusTooManyRequests || codes[3] != http.StatusTooManyRequests {
		t.Fatalf("over-burst requests admitted: %v", codes)
	}
}

// TestServerShutdownDrain drives concurrent queries while Shutdown runs:
// every response must be a clean 200 or a 503 refusal — never an error from
// a store closed mid-query — and after Shutdown the registry is closed and
// new requests are refused.
func TestServerShutdownDrain(t *testing.T) {
	s, ids, ts := newTestServer(t, 3, ServerOptions{DrainTimeout: 5 * time.Second})

	var wg sync.WaitGroup
	errc := make(chan error, 32)
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				url := fmt.Sprintf("%s/query?tenant=%s&user=alice&xpath=//public", ts.URL, ids[(w+i)%len(ids)])
				resp, err := http.Get(url)
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					select {
					case errc <- fmt.Errorf("status %d: %s", resp.StatusCode, body):
					default:
					}
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let some queries get in flight
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Post-shutdown: requests are refused, registry is closed.
	resp, err := http.Get(ts.URL + "/query?tenant=" + ids[0] + "&user=alice&xpath=//public")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d", resp.StatusCode)
	}
	if _, err := s.reg.Acquire(ids[0]); err == nil {
		t.Fatal("registry still open after server shutdown")
	}
}
