package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dolxml/internal/obs"
	"dolxml/securexml"
)

// syncBuffer makes reads of the access-log buffer safe while handler
// goroutines may still be writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServerExplain(t *testing.T) {
	s, ids, ts := newTestServer(t, 1, ServerOptions{})
	defer s.Shutdown(context.Background())
	base := ts.URL + "/explain?tenant=" + ids[0] + "&user=alice&xpath=//public"

	// Default JSON plan: compiled only, never executed.
	code, body := get(t, base, nil)
	if code != http.StatusOK {
		t.Fatalf("/explain: %d %s", code, body)
	}
	var plan struct {
		Query     string `json:"query"`
		Operators []any  `json:"operators"`
	}
	if err := json.Unmarshal([]byte(body), &plan); err != nil {
		t.Fatalf("plan not JSON: %v\n%s", err, body)
	}
	if plan.Query == "" || len(plan.Operators) == 0 {
		t.Fatalf("plan incomplete: %s", body)
	}

	// Text form renders the tree.
	code, body = get(t, base+"&format=text", nil)
	if code != http.StatusOK || !strings.Contains(body, "pattern:") {
		t.Fatalf("/explain text: %d %s", code, body)
	}

	// ANALYZE executes and attributes.
	code, body = get(t, base+"&analyze=1&format=text", nil)
	if code != http.StatusOK || !strings.Contains(body, "attribution") {
		t.Fatalf("/explain analyze: %d %s", code, body)
	}

	// A malformed query reports 400, not 500.
	if code, _ = get(t, ts.URL+"/explain?tenant="+ids[0]+"&user=alice&xpath=///", nil); code != http.StatusBadRequest {
		t.Fatalf("bad xpath: %d", code)
	}
}

func TestServerAccessLog(t *testing.T) {
	var logBuf syncBuffer
	s, ids, ts := newTestServer(t, 1, ServerOptions{AccessLog: &logBuf})
	defer s.Shutdown(context.Background())

	if code, _ := get(t, ts.URL+"/query?tenant="+ids[0]+"&user=alice&xpath=//public", nil); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if code, _ := get(t, ts.URL+"/query?tenant="+ids[0]+"&user=alice&xpath=///", nil); code != http.StatusBadRequest {
		t.Fatalf("bad query: %d", code)
	}
	if code, _ := get(t, ts.URL+"/explain?tenant="+ids[0]+"&user=alice&xpath=//public", nil); code != http.StatusOK {
		t.Fatalf("explain: %d", code)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines, want 3:\n%s", len(lines), logBuf.String())
	}
	type entry struct {
		At          string `json:"at"`
		Endpoint    string `json:"endpoint"`
		Tenant      string `json:"tenant"`
		Subject     string `json:"subject"`
		XPath       string `json:"xpath"`
		Status      int    `json:"status"`
		LatencyUs   int64  `json:"latency_us"`
		Pages       int64  `json:"pages"`
		Answers     int    `json:"answers"`
		Fingerprint string `json:"fingerprint"`
	}
	var es []entry
	for i, ln := range lines {
		var e entry
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		es = append(es, e)
	}
	fp, err := securexml.QueryFingerprint("//public", securexml.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ok := es[0]
	if ok.Endpoint != "/query" || ok.Tenant != ids[0] || ok.Subject != "alice" ||
		ok.Status != http.StatusOK || ok.Answers == 0 || ok.Fingerprint != fp || ok.At == "" {
		t.Errorf("query line wrong: %+v", ok)
	}
	if ok.Pages == 0 {
		t.Errorf("query line recorded no pages: %+v", ok)
	}
	if es[1].Status != http.StatusBadRequest || es[1].XPath != "///" {
		t.Errorf("error line wrong: %+v", es[1])
	}
	if es[2].Endpoint != "/explain" || es[2].Status != http.StatusOK {
		t.Errorf("explain line wrong: %+v", es[2])
	}
}

// TestServerMetricsLint validates the multi-tenant exposition — every
// tenant's families prefixed and re-HELPed — with the strict parser, and
// checks the per-tenant SLO burn gauges are present (the registry arms a
// default objective).
func TestServerMetricsLint(t *testing.T) {
	s, ids, ts := newTestServer(t, 2, ServerOptions{})
	defer s.Shutdown(context.Background())
	for _, id := range ids {
		if code, _ := get(t, ts.URL+"/query?tenant="+id+"&user=alice&xpath=//public", nil); code != http.StatusOK {
			t.Fatalf("query %s failed", id)
		}
	}
	code, body := get(t, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if errs := obs.LintPrometheus(strings.NewReader(body)); len(errs) > 0 {
		t.Fatalf("/metrics fails lint: %v", errs)
	}
	for _, want := range []string{
		"dolxml_" + MetricsSlug(ids[0]) + "_slo_burn_rate_permille",
		"dolxml_" + MetricsSlug(ids[1]) + "_slo_burn_rate_permille",
		"dolxml_" + MetricsSlug(ids[0]) + "_recorder_queries",
		"# HELP dolxml_" + MetricsSlug(ids[0]) + "_query_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPerTenantSLO checks SLOLatencyByTenant: one tenant with an
// objective every query misses, one with an effectively infinite one,
// and the per-tenant burn gauges diverge accordingly.
func TestPerTenantSLO(t *testing.T) {
	root, ids := buildTenants(t, 2)
	r, err := New(Options{Root: root, MaxOpen: 4, SLOLatencyByTenant: map[string]time.Duration{
		ids[0]: time.Nanosecond,
		ids[1]: time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRegistry(t, r)
	for _, id := range ids {
		h, err := r.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Store().Query("alice", "read", "//public"); err != nil {
			h.Close()
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteMetricsPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	tight := "dolxml_" + MetricsSlug(ids[0]) + "_slo_burn_rate_permille 1000000"
	relaxed := "dolxml_" + MetricsSlug(ids[1]) + "_slo_burn_rate_permille 0"
	if !strings.Contains(exposition, tight) {
		t.Errorf("tight tenant not burning: want %q in exposition", tight)
	}
	if !strings.Contains(exposition, relaxed) {
		t.Errorf("relaxed tenant burning: want %q in exposition", relaxed)
	}
}
