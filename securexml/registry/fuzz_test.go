package registry

import (
	"path/filepath"
	"strings"
	"testing"
)

// FuzzRegistryPaths fuzzes the tenant-id → store-directory mapping, the
// only place untrusted request bytes meet the filesystem. Whatever the
// input, an accepted ID must resolve to a direct child of root — no
// traversal, no absolute escapes, no separator smuggling.
func FuzzRegistryPaths(f *testing.F) {
	for _, seed := range []string{
		"tenant-01", "a", "..", "../../etc/passwd", "a/../b", "a/b",
		"a\\b", "C:\\x", ".", ".hidden", "-", "_", "UPPER", "t\x00x",
		strings.Repeat("a", 64), strings.Repeat("a", 65), "a..b", "a.b",
		"%2e%2e%2f", "a\nb", "\u2025", "ｅｖｉｌ",
	} {
		f.Add(seed)
	}
	const root = "/srv/dolxml/tenants"
	f.Fuzz(func(t *testing.T, id string) {
		p, err := TenantPath(root, id)
		if err != nil {
			return // rejected — nothing else to hold
		}
		if p != filepath.Join(root, id) {
			t.Fatalf("TenantPath(%q) = %q, not root/id", id, p)
		}
		if filepath.Dir(p) != root {
			t.Fatalf("TenantPath(%q) = %q escapes root", id, p)
		}
		if strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") ||
			strings.ContainsAny(id, "\x00\n\r ") || id != strings.ToLower(id) {
			t.Fatalf("TenantPath accepted suspicious id %q", id)
		}
		if rel, err := filepath.Rel(root, p); err != nil || rel != id || strings.HasPrefix(rel, "..") {
			t.Fatalf("TenantPath(%q): rel = %q err = %v", id, rel, err)
		}
	})
}
