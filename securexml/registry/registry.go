// Package registry grows the one-store serve path into a multi-tenant
// server: a directory of secure XML stores opened lazily by tenant ID,
// bounded by an LRU of open stores, all sharing one global buffer-pool byte
// budget and one decode-cache byte budget. Admission of a new tenant evicts
// the coldest idle store; stores serving in-flight queries are pinned by
// reference counts and, when evicted anyway, drain — they keep answering
// until the last handle closes, then flush and close so WAL checkpoints
// land. Budgets are divided fairly: every open (or draining) store gets an
// equal slice of the byte budgets, recomputed on every membership change,
// so the sum of per-store pool capacities never exceeds the global budget.
package registry

import (
	"container/list"
	"context"
	"fmt"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"dolxml/internal/obs"
	"dolxml/securexml"
)

// Options configures a Registry.
type Options struct {
	// Root is the directory holding one store directory per tenant ID.
	Root string
	// MaxOpen bounds the number of concurrently open stores (default 16).
	// Stores pinned by in-flight queries cannot be evicted, so the bound
	// can be exceeded transiently while every open store is busy.
	MaxOpen int
	// PoolBytes is the global buffer-pool budget shared by all open
	// stores (default 64 MiB). Each open store's pool capacity is its
	// equal slice, floored at MinPoolPages frames.
	PoolBytes int64
	// DecodeCacheBytes is the global decoded-block cache budget shared
	// the same way (default 16 MiB).
	DecodeCacheBytes int64
	// MinPoolPages floors every store's pool share (default 8 frames) so
	// a crowded registry cannot starve a store below a working set.
	MinPoolPages int
	// Store is the template for per-tenant StoreOptions. Path, PageSize,
	// PoolPages and DecodeCacheBytes are overridden per tenant.
	Store securexml.StoreOptions
	// SLOLatencyByTenant overrides Store.SLOLatency for specific tenants:
	// each tenant's store opens with its own latency objective, and its
	// slo_* gauges (burn rate included) export under that tenant's metrics
	// prefix. Tenants not in the map use Store.SLOLatency (default 250ms
	// when serving through a registry, so burn-rate gauges are meaningful
	// out of the box; set Store.SLOLatency negative to disable).
	SLOLatencyByTenant map[string]time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxOpen < 1 {
		o.MaxOpen = 16
	}
	if o.PoolBytes <= 0 {
		o.PoolBytes = 64 << 20
	}
	if o.DecodeCacheBytes <= 0 {
		o.DecodeCacheBytes = 16 << 20
	}
	if o.MinPoolPages < 1 {
		o.MinPoolPages = 8
	}
	if o.Store.SLOLatency == 0 {
		o.Store.SLOLatency = 250 * time.Millisecond
	}
	return o
}

// tenantIDRe admits exactly the IDs TenantPath maps to store directories:
// lowercase alphanumerics, underscore and dash, starting with an
// alphanumeric, at most 64 runes. No dots, no separators — traversal is
// unrepresentable.
var tenantIDRe = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// TenantPath maps a tenant ID to its store directory under root, rejecting
// any ID that could escape it. The ID grammar contains no path separators
// or dots, and the result is additionally verified to resolve to a direct
// child of root.
func TenantPath(root, id string) (string, error) {
	if !tenantIDRe.MatchString(id) {
		return "", fmt.Errorf("registry: invalid tenant id %q", id)
	}
	p := filepath.Join(root, id)
	// Defense in depth: the joined path must be exactly root/id again.
	if rel, err := filepath.Rel(root, p); err != nil || rel != id {
		return "", fmt.Errorf("registry: tenant id %q escapes root", id)
	}
	return p, nil
}

// MetricsSlug converts a tenant ID into a metrics-name-safe prefix
// fragment: dashes become underscores under the obs lowercase_snake
// grammar.
func MetricsSlug(id string) string {
	return "tenant_" + strings.ReplaceAll(id, "-", "_")
}

// tenant is one registry entry. refs counts outstanding Handles; elem is
// the tenant's LRU slot while open (nil once draining).
type tenant struct {
	id    string
	store *securexml.Store
	refs  int
	elem  *list.Element
	// draining marks a tenant evicted (or registry-closed) while handles
	// were outstanding: it is out of the LRU and invisible to eviction,
	// keeps serving its open handles, and closes when the last one goes.
	draining bool
	// done closes once the store is closed; closeErr holds the result.
	done     chan struct{}
	closeErr error
}

// Registry is the multi-tenant store directory. It is safe for concurrent
// use.
type Registry struct {
	opts Options
	reg  *obs.Registry

	mu      sync.Mutex
	tenants map[string]*tenant // open and draining tenants
	lru     *list.List         // open tenants only; front = most recent
	closed  bool

	acquires  obs.Counter // handle acquisitions
	opens     obs.Counter // physical store opens
	evictions obs.Counter // tenants pushed out by LRU admission
	drains    obs.Counter // evictions deferred behind open handles
	revives   obs.Counter // draining tenants re-acquired before closing
	overages  obs.Counter // admissions past MaxOpen (every store busy)
}

// New creates a registry over root. The root directory must exist; tenant
// stores are opened lazily on first Acquire.
func New(opts Options) (*Registry, error) {
	r := &Registry{
		opts:    opts.withDefaults(),
		reg:     obs.NewRegistry(),
		tenants: make(map[string]*tenant),
		lru:     list.New(),
	}
	for _, c := range []struct {
		name, help string
		ctr        *obs.Counter
	}{
		{"acquires_total", "Tenant handle acquisitions.", &r.acquires},
		{"opens_total", "Tenant stores opened from disk.", &r.opens},
		{"evictions_total", "Tenants evicted from the open set.", &r.evictions},
		{"drains_total", "Evicted tenants fully drained and closed.", &r.drains},
		{"revives_total", "Draining tenants revived by a new acquire.", &r.revives},
		{"overage_admissions_total", "Opens admitted past the pool byte budget.", &r.overages},
	} {
		if err := r.reg.RegisterCounter(c.name, c.ctr); err != nil {
			return nil, err
		}
		r.reg.SetHelp(c.name, c.help)
	}
	for _, g := range []struct {
		name, help string
		fn         obs.Gauge
	}{
		{"tenants_open", "Tenant stores currently open.", func() int64 { r.mu.Lock(); defer r.mu.Unlock(); return int64(r.lru.Len()) }},
		{"tenants_draining", "Evicted tenants still draining handles.", func() int64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return int64(len(r.tenants) - r.lru.Len())
		}},
		{"pool_budget_bytes", "Configured aggregate buffer-pool byte budget.", func() int64 { return r.opts.PoolBytes }},
		{"pool_bytes_in_use", "Buffer-pool bytes in use across open tenants.", r.PoolBytesInUse},
	} {
		if err := r.reg.RegisterGauge(g.name, g.fn); err != nil {
			return nil, err
		}
		r.reg.SetHelp(g.name, g.help)
	}
	return r, nil
}

// Handle pins one tenant's store for use. Close releases the pin; the
// store stays valid until then even if the tenant is evicted meanwhile.
type Handle struct {
	r    *Registry
	t    *tenant
	once sync.Once
}

// TenantID returns the tenant the handle is for.
func (h *Handle) TenantID() string { return h.t.id }

// Store returns the pinned store.
func (h *Handle) Store() *securexml.Store { return h.t.store }

// Close releases the handle. The last handle of a draining tenant closes
// its store. Close is idempotent.
func (h *Handle) Close() error {
	var err error
	h.once.Do(func() { err = h.r.release(h.t) })
	return err
}

// Acquire opens (or re-uses) the store for tenant id and returns a pinned
// handle. While any handle is open the tenant cannot be closed out from
// under it: eviction defers to a drain that completes at the last Close.
func (r *Registry) Acquire(id string) (*Handle, error) {
	dir, err := TenantPath(r.opts.Root, id)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("registry: closed")
	}
	r.acquires.Inc()
	if t, ok := r.tenants[id]; ok {
		if t.draining {
			// Evicted but still open behind handles — hot again; cancel
			// the drain instead of double-opening the same directory.
			t.draining = false
			t.elem = r.lru.PushFront(t)
			r.revives.Inc()
			r.rebalanceLocked()
		} else {
			r.lru.MoveToFront(t.elem)
		}
		t.refs++
		return &Handle{r: r, t: t}, nil
	}

	// Admission: push the coldest idle store out first. Busy stores are
	// skipped; if every open store is busy the registry runs over MaxOpen
	// rather than reopening a directory twice or blocking the query.
	for r.lru.Len() >= r.opts.MaxOpen {
		victim := r.coldestIdleLocked()
		if victim == nil {
			r.overages.Inc()
			break
		}
		r.evictions.Inc()
		if err := r.removeLocked(victim); err != nil {
			return nil, fmt.Errorf("registry: evicting %s: %w", victim.id, err)
		}
	}

	opts := r.opts.Store
	if d, ok := r.opts.SLOLatencyByTenant[id]; ok {
		opts.SLOLatency = d
	}
	share := r.shareLocked(len(r.tenants) + 1)
	opts.DecodeCacheBytes = share.decodeBytes
	// PoolPages needs the page size, which lives in the store's meta; open
	// with a floor and re-budget right after.
	opts.PoolPages = r.opts.MinPoolPages
	st, err := securexml.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	r.opens.Inc()
	t := &tenant{id: id, store: st, refs: 1, done: make(chan struct{})}
	t.elem = r.lru.PushFront(t)
	r.tenants[id] = t
	r.rebalanceLocked()
	return &Handle{r: r, t: t}, nil
}

// acquireOpen pins tenant id only if it is already open (used by metrics
// export, which must not fault tenants in or resurrect draining ones).
func (r *Registry) acquireOpen(id string) *Handle {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok || t.draining || r.closed {
		return nil
	}
	t.refs++
	return &Handle{r: r, t: t}
}

// coldestIdleLocked returns the least recently used open tenant with no
// outstanding handles, or nil when every open tenant is busy.
func (r *Registry) coldestIdleLocked() *tenant {
	for e := r.lru.Back(); e != nil; e = e.Prev() {
		if t := e.Value.(*tenant); t.refs == 0 {
			return t
		}
	}
	return nil
}

// removeLocked takes tenant t out of the open set: idle tenants flush and
// close immediately, busy ones switch to draining. Caller holds r.mu.
func (r *Registry) removeLocked(t *tenant) error {
	r.lru.Remove(t.elem)
	t.elem = nil
	if t.refs > 0 {
		t.draining = true
		r.drains.Inc()
		r.rebalanceLocked()
		return nil
	}
	err := r.closeLocked(t)
	r.rebalanceLocked()
	return err
}

// closeLocked closes t's store and forgets the tenant. Caller holds r.mu;
// t must have no handles.
func (r *Registry) closeLocked(t *tenant) error {
	t.closeErr = t.store.Close()
	delete(r.tenants, t.id)
	close(t.done)
	return t.closeErr
}

// release drops one handle reference; the last reference of a draining
// tenant closes its store.
func (r *Registry) release(t *tenant) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t.refs <= 0 {
		return fmt.Errorf("registry: release of unreferenced tenant %s", t.id)
	}
	t.refs--
	if t.draining && t.refs == 0 {
		err := r.closeLocked(t)
		r.rebalanceLocked()
		return err
	}
	// Repay overage admissions: when every store was busy, Acquire admits
	// past MaxOpen rather than blocking, and once all tenants are resident
	// no admission ever runs again — so the shrink back to MaxOpen has to
	// happen here, as pins release.
	for r.lru.Len() > r.opts.MaxOpen {
		victim := r.coldestIdleLocked()
		if victim == nil {
			break
		}
		r.evictions.Inc()
		if err := r.removeLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// Evict closes tenant id's store (deferring behind open handles). It is a
// no-op for tenants that are not open.
func (r *Registry) Evict(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok || t.draining {
		return nil
	}
	r.evictions.Inc()
	return r.removeLocked(t)
}

type share struct {
	poolFrames  func(pageSize int) int
	decodeBytes int64
}

// shareLocked computes the fair per-tenant budget slice with n members.
// Caller holds r.mu.
func (r *Registry) shareLocked(n int) share {
	if n < 1 {
		n = 1
	}
	poolBytes := r.opts.PoolBytes / int64(n)
	decode := r.opts.DecodeCacheBytes / int64(n)
	if decode < 1 {
		decode = -1 // disable rather than "keep default"
	}
	min := r.opts.MinPoolPages
	return share{
		poolFrames: func(pageSize int) int {
			f := int(poolBytes / int64(pageSize))
			if f < min {
				f = min
			}
			return f
		},
		decodeBytes: decode,
	}
}

// rebalanceLocked re-divides the global budgets across every tenant still
// holding pool frames — open and draining alike, since draining stores
// keep their frames until the last handle closes. Caller holds r.mu.
func (r *Registry) rebalanceLocked() {
	n := len(r.tenants)
	if n == 0 {
		return
	}
	sh := r.shareLocked(n)
	for _, t := range r.tenants {
		// Shrink errors mean a dirty-page write-back failed; the store
		// will surface that on its own write path, so budgeting continues.
		_ = t.store.SetPoolCapacity(sh.poolFrames(t.store.PageSize()))
		t.store.SetDecodeCacheBudget(sh.decodeBytes)
	}
}

// PoolBytesInUse sums the buffer-pool bytes held by every open and
// draining store — the quantity the global budget bounds.
func (r *Registry) PoolBytesInUse() int64 {
	r.mu.Lock()
	stores := make([]*securexml.Store, 0, len(r.tenants))
	for _, t := range r.tenants {
		stores = append(stores, t.store)
	}
	r.mu.Unlock()
	var sum int64
	for _, st := range stores {
		sum += st.PoolBufferedBytes()
	}
	return sum
}

// TenantInfo describes one registry entry at a point in time.
type TenantInfo struct {
	ID        string
	Refs      int
	Draining  bool
	PoolBytes int64
	PageSize  int
}

// Tenants lists the open and draining tenants, sorted by ID.
func (r *Registry) Tenants() []TenantInfo {
	r.mu.Lock()
	infos := make([]TenantInfo, 0, len(r.tenants))
	for _, t := range r.tenants {
		infos = append(infos, TenantInfo{
			ID:        t.id,
			Refs:      t.refs,
			Draining:  t.draining,
			PoolBytes: t.store.PoolBufferedBytes(),
			PageSize:  t.store.PageSize(),
		})
	}
	r.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// OpenCount returns the number of open (non-draining) tenants.
func (r *Registry) OpenCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// MetricsSnapshot returns the registry-level metrics.
func (r *Registry) MetricsSnapshot() obs.Snapshot { return r.reg.Snapshot() }

// WriteMetricsJSON writes the registry-level metrics as JSON.
func (r *Registry) WriteMetricsJSON(w io.Writer) error { return r.reg.WriteJSON(w) }

// WriteMetricsPrometheus writes the registry-level metrics in Prometheus
// text format under the dolxml_registry prefix, then each open tenant's
// store metrics under dolxml_tenant_<id> — the per-tenant split of
// /metrics. Tenants are pinned while their section writes, so eviction
// cannot close a store mid-export.
func (r *Registry) WriteMetricsPrometheus(w io.Writer) error {
	if err := r.reg.WritePrometheus(w, "dolxml_registry"); err != nil {
		return err
	}
	for _, info := range r.Tenants() {
		h := r.acquireOpen(info.ID)
		if h == nil {
			continue
		}
		err := h.Store().WriteMetricsPrometheusAs(w, "dolxml_"+MetricsSlug(info.ID))
		h.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close evicts every tenant and shuts the registry down. Tenants with
// outstanding handles drain; Close waits for them until ctx expires, then
// returns an error naming the stragglers (their stores still close when
// their last handle does).
func (r *Registry) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	var waits []*tenant
	var firstErr error
	for _, t := range r.tenants {
		if t.elem != nil {
			r.lru.Remove(t.elem)
			t.elem = nil
		}
		if t.refs > 0 {
			t.draining = true
			r.drains.Inc()
			waits = append(waits, t)
			continue
		}
		if err := r.closeLocked(t); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.mu.Unlock()
	for _, t := range waits {
		select {
		case <-t.done:
			if t.closeErr != nil && firstErr == nil {
				firstErr = t.closeErr
			}
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = fmt.Errorf("registry: tenant %s still busy at close deadline", t.id)
			}
		}
	}
	return firstErr
}
