package securexml

import (
	"strings"
	"sync"
	"testing"

	"dolxml/internal/xmark"
)

// Readers racing subtree-access updates on a write-ahead-logged,
// file-backed store must never observe a torn region: the writer keeps
// toggling one subject's access to an entire multi-page subtree, and every
// concurrent answer for a query confined to that subtree has to be either
// the full pre-toggle set or empty — a partial answer would mean a reader
// saw some of the subtree's pages rewritten and others not. Run with
// -race to exercise the store lock and the WAL pager's internal locking.
func TestConcurrentReadersDuringWALUpdates(t *testing.T) {
	dir := t.TempDir()
	doc := xmark.Generate(xmark.Scaled(11, 400))
	var xb strings.Builder
	if err := doc.WriteXML(&xb); err != nil {
		t.Fatal(err)
	}
	s, err := NewBuilder().
		LoadXMLString(xb.String()).
		AddGroup("staff").
		AddUser("u").
		AddMember("staff", "u").
		Grant("staff", "read", "/site").
		Seal(StoreOptions{Path: dir + "/pages.db", PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	// The toggled subtree and a query answered entirely inside it.
	regions := firstNode(t, s, "/site/regions")
	const q = "/site/regions//item"
	full, err := s.Query("u", "read", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Fatalf("need a multi-node answer inside the toggled subtree, got %d", len(full))
	}
	fullSet := map[NodeID]bool{}
	for _, m := range full {
		fullSet[m.Node] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	check := func(ms []Match) error {
		if len(ms) != 0 && len(ms) != len(full) {
			t.Errorf("torn answer: %d of %d matches visible", len(ms), len(full))
		}
		for _, m := range ms {
			if !fullSet[m.Node] {
				t.Errorf("answer node %d not in the full set", m.Node)
			}
		}
		return nil
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				ms, err := s.Query("u", "read", q)
				if err != nil {
					errs <- err
					return
				}
				check(ms)
				ms, err = s.QueryPruned("u", "read", q)
				if err != nil {
					errs <- err
					return
				}
				check(ms)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := s.SetAccess("staff", "read", regions, i%2 == 1, true); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Failed() {
		t.Fatal("store poisoned by a healthy update sequence")
	}
}
