package securexml

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dolxml/internal/obs"
)

// qUnsat pairs two tags that both exist in XMark but never in this
// parent-child relation — only the path summary can prove the query empty.
const qUnsat = "/site/people/person/parlist"

// TestStoreExplainUnsatisfiable is the acceptance criterion for the
// compile-time short-circuit: EXPLAIN reports it without pinning a single
// store page, and an executed run under a trace confirms the same
// zero-page property.
func TestStoreExplainUnsatisfiable(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512})
	defer s.Close()
	ctx := context.Background()

	before := s.MetricsSnapshot()
	plan, err := s.Explain(ctx, "u", "read", qUnsat, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := s.MetricsSnapshot()
	if !plan.Unsatisfiable() {
		t.Fatalf("plan not unsatisfiable:\n%s", plan)
	}
	if plan.Operators() != 0 {
		t.Fatalf("unsatisfiable plan has %d operators", plan.Operators())
	}
	if d := after.Get("pool_gets") - before.Get("pool_gets"); d != 0 {
		t.Fatalf("EXPLAIN pinned %d store pages", d)
	}
	if !strings.Contains(plan.String(), "no embedding in the path summary") {
		t.Errorf("text plan does not name the short-circuit:\n%s", plan)
	}
	raw, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"unsatisfiable":true`) {
		t.Errorf("JSON plan missing the verdict: %s", raw)
	}

	// The executed form: a traced run of the same query records no page
	// pin at all.
	tr := NewQueryTrace()
	ms, err := s.QueryCtx(ctx, "u", "read", qUnsat, QueryOptions{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("unsatisfiable query returned %d answers", len(ms))
	}
	if tr.PageReads() != 0 {
		t.Fatalf("unsatisfiable run pinned %d pages:\n%s", tr.PageReads(), tr)
	}
}

// TestStoreAnalyzeReconciles is the facade acceptance matrix: for Q1–Q6
// plus the unsatisfiable query, under both semantics, sequential and
// parallel, ANALYZE's per-operator page attribution must sum exactly to
// the store pool's pin delta — nothing double-counted, nothing lost.
func TestStoreAnalyzeReconciles(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512})
	defer s.Close()
	ctx := context.Background()

	queries := append(append([]struct{ name, expr string }{}, table1...),
		struct{ name, expr string }{"Qunsat", qUnsat})
	for _, q := range queries {
		for _, pruned := range []bool{false, true} {
			for _, par := range []int{1, 4} {
				name := fmt.Sprintf("%s/pruned=%v/par=%d", q.name, pruned, par)
				an := &QueryAnalysis{}
				before := s.MetricsSnapshot()
				ms, err := s.QueryCtx(ctx, "u", "read", q.expr, QueryOptions{
					Pruned: pruned, Parallelism: par, Analyze: an,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				after := s.MetricsSnapshot()
				d := func(metric string) int64 { return after.Get(metric) - before.Get(metric) }
				if !an.Ready() {
					t.Fatalf("%s: analysis not filled", name)
				}
				tot := an.an.Totals()
				if tot.Pins != d("pool_gets") || tot.Hits != d("pool_hits") {
					t.Errorf("%s: attributed pins/hits %d/%d != pool delta %d/%d",
						name, tot.Pins, tot.Hits, d("pool_gets"), d("pool_hits"))
				}
				if an.TotalPages() != tot.Pins {
					t.Errorf("%s: TotalPages %d != totals %d", name, an.TotalPages(), tot.Pins)
				}
				if tot.Emits != int64(len(ms)) {
					t.Errorf("%s: attributed emits %d != %d answers", name, tot.Emits, len(ms))
				}
				if an.an.Dropped != 0 {
					t.Errorf("%s: analysis trace dropped %d events", name, an.an.Dropped)
				}
				if q.name == "Qunsat" {
					if !an.Plan().Unsatisfiable() || tot.Pins != 0 {
						t.Errorf("%s: want unsatisfiable 0-page analysis, got %d pins", name, tot.Pins)
					}
				} else if p := an.Plan(); !p.EmptyAccess() && p.Operators() == 0 {
					// Q2–Q6 touch subtrees fully revoked for user u, so
					// their plans legitimately short-circuit as
					// access-empty with no operators.
					t.Errorf("%s: satisfiable plan has no operators", name)
				}
				var sb strings.Builder
				if err := an.WriteText(&sb); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !strings.Contains(sb.String(), "attribution") {
					t.Errorf("%s: report lacks attribution table:\n%s", name, sb.String())
				}
			}
		}
	}
}

// An unfilled analysis refuses to render, and a parse error leaves it
// unfilled.
func TestAnalyzeErrorPaths(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512})
	defer s.Close()
	an := &QueryAnalysis{}
	if err := an.WriteText(io.Discard); err == nil {
		t.Error("unfilled analysis rendered without error")
	}
	if _, err := s.QueryCtx(context.Background(), "u", "read", "///", QueryOptions{Analyze: an}); err == nil {
		t.Error("malformed query did not error")
	}
	if an.Ready() {
		t.Error("analysis filled despite query error")
	}
}

// TestFlightRecorderAlwaysOn checks the untraced path: every query leaves
// a digest, aggregates key by normalized fingerprint, and /debug/queries
// serves the snapshot.
func TestFlightRecorderAlwaysOn(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512})
	defer s.Close()
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := s.QueryCtx(ctx, "u", "read", table1[0].expr, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.QueryCtx(ctx, "u", "read", table1[3].expr, QueryOptions{Pruned: true}); err != nil {
		t.Fatal(err)
	}
	// Errors are recorded too (the parse failed, so the fingerprint is
	// empty but the digest still lands).
	if _, err := s.QueryCtx(ctx, "u", "read", "///", QueryOptions{}); err == nil {
		t.Fatal("malformed query did not error")
	}

	m := s.MetricsSnapshot()
	if got := m.Get("recorder_queries"); got != 5 {
		t.Errorf("recorder_queries = %d, want 5", got)
	}

	var buf bytes.Buffer
	if err := s.WriteRecorderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Total        int64 `json:"total"`
		Fingerprints []struct {
			Fingerprint string `json:"fingerprint"`
			Count       int64  `json:"count"`
			Errors      int64  `json:"errors"`
			Pages       int64  `json:"pages"`
		} `json:"fingerprints"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total != 5 {
		t.Errorf("recorder total = %d, want 5", snap.Total)
	}
	fpQ1, err := QueryFingerprint(table1[0].expr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fp := range snap.Fingerprints {
		if fp.Fingerprint == fpQ1 {
			found = true
			if fp.Count != 3 {
				t.Errorf("fingerprint %q count = %d, want 3", fpQ1, fp.Count)
			}
			if fp.Pages == 0 {
				t.Errorf("fingerprint %q recorded no pages (counting trace not attached?)", fpQ1)
			}
		}
	}
	if !found {
		t.Fatalf("fingerprint %q not aggregated: %s", fpQ1, buf.String())
	}

	// The same snapshot over HTTP, JSON and text.
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), fpQ1) {
		t.Errorf("/debug/queries: %d, body missing fingerprint", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/debug/queries?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "flight recorder") {
		t.Errorf("text report wrong: %s", body)
	}
}

// Pruned and bindings semantics must not share a fingerprint, and the
// fingerprint normalizes the pattern render rather than the raw text.
func TestQueryFingerprintNormalization(t *testing.T) {
	fp1, err := QueryFingerprint("//item[location]", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := QueryFingerprint("//item[location]", QueryOptions{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := QueryFingerprint("//item[location]", QueryOptions{Unrestricted: true})
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 || fp1 == fp3 || fp2 == fp3 {
		t.Errorf("semantics share a fingerprint: %q %q %q", fp1, fp2, fp3)
	}
	if !strings.HasSuffix(fp1, "|bindings") || !strings.HasSuffix(fp2, "|pruned") || !strings.HasSuffix(fp3, "|unrestricted") {
		t.Errorf("fingerprints missing semantics tag: %q %q %q", fp1, fp2, fp3)
	}
	if fpL, _ := QueryFingerprint("//item[location]", QueryOptions{Limit: 5}); fpL == fp1 || !strings.Contains(fpL, "|limit=5") {
		t.Errorf("limit not fingerprinted: %q", fpL)
	}
}

// TestSLOBurnRate pins the burn-rate math at both extremes: an objective
// every query misses burns at 1/(1-target), one no query misses burns 0.
func TestSLOBurnRate(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512, SLOLatency: time.Nanosecond})
	defer s.Close()
	const n = 4
	for i := 0; i < n; i++ {
		if _, err := s.Query("u", "read", "//parlist//parlist"); err != nil {
			t.Fatal(err)
		}
	}
	m := s.MetricsSnapshot()
	if got := m.Get("slo_queries_total"); got != n {
		t.Errorf("slo_queries_total = %d, want %d", got, n)
	}
	if got := m.Get("slo_queries_over_objective"); got != n {
		t.Errorf("slo_queries_over_objective = %d, want %d", got, n)
	}
	// Every query over, target 0.999: burn = 1/0.001 * 1000 permille.
	if got := m.Get("slo_burn_rate_permille"); got != 1_000_000 {
		t.Errorf("slo_burn_rate_permille = %d, want 1000000", got)
	}

	relaxed := xmarkStore(t, StoreOptions{PageSize: 512, SLOLatency: time.Hour})
	defer relaxed.Close()
	if _, err := relaxed.Query("u", "read", "//parlist//parlist"); err != nil {
		t.Fatal(err)
	}
	m = relaxed.MetricsSnapshot()
	if got := m.Get("slo_queries_over_objective"); got != 0 {
		t.Errorf("relaxed slo_queries_over_objective = %d, want 0", got)
	}
	if got := m.Get("slo_burn_rate_permille"); got != 0 {
		t.Errorf("relaxed slo_burn_rate_permille = %d, want 0", got)
	}
	if got := m.Get("slo_latency_objective_us"); got != time.Hour.Microseconds() {
		t.Errorf("slo_latency_objective_us = %d, want %d", got, time.Hour.Microseconds())
	}
}

// TestMetricsExpositionLints scrapes the single-store /metrics endpoint
// and validates the whole exposition with the strict parser: HELP before
// TYPE on every family, histogram buckets cumulative and capped by +Inf,
// no duplicate or interleaved families.
func TestMetricsExpositionLints(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512, SLOLatency: 250 * time.Millisecond})
	defer s.Close()
	if _, err := s.Query("u", "read", "//item//emph"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(body)
	if errs := obs.LintPrometheus(strings.NewReader(exposition)); len(errs) > 0 {
		t.Fatalf("/metrics fails lint: %v", errs)
	}
	for _, want := range []string{
		"# HELP dolxml_query_total Queries started.",
		"# HELP dolxml_slo_burn_rate_permille ",
		"# HELP dolxml_query_trace_dropped_total ",
		"# HELP dolxml_pool_gets ",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTraceDroppedCounter checks the spill path end to end: a tiny trace
// limit drops events and the store-wide counter advances at drop time.
func TestTraceDroppedCounter(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512})
	defer s.Close()
	tr := &QueryTrace{t: obs.NewTraceWithLimit(4)}
	if _, err := s.QueryCtx(context.Background(), "u", "read", "//item//emph", QueryOptions{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() == 0 {
		t.Fatal("tiny trace dropped nothing")
	}
	if got := s.MetricsSnapshot().Get("query_trace_dropped_total"); got != tr.Dropped() {
		t.Errorf("query_trace_dropped_total = %d, want %d", got, tr.Dropped())
	}
}
