package securexml

import (
	"context"
	"time"

	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/query"
	"dolxml/internal/xmltree"
)

// QueryOptions refine query execution for QueryCtx and QueryCursor.
type QueryOptions struct {
	// Pruned selects the Gabillon–Bruno semantics (§4.2): subtrees rooted
	// at inaccessible nodes contribute nothing. Ignored when Unrestricted.
	Pruned bool
	// Unrestricted evaluates without access control (administrative use);
	// the user and mode arguments are ignored.
	Unrestricted bool
	// Limit, when positive, stops evaluation after that many answers. The
	// cursor pipeline terminates early: pages beyond the last needed match
	// are never read.
	Limit int
	// Parallelism bounds the candidate-matching worker pool; 0 means
	// GOMAXPROCS, 1 forces sequential evaluation. Every setting yields the
	// same answers.
	Parallelism int
	// DisableSummarySkip turns off structure-aware page skipping (the
	// per-page summary half of the fused skip mask), for ablation. Answers
	// are identical either way; only the pages read differ.
	DisableSummarySkip bool
	// DisablePathSummary turns off path-summary routing: compile-time
	// empty-query detection, path-class candidate filtering, the path
	// refinement of the dead-page bits, and pre-resolved access verdicts
	// on uniform path classes. For ablation; answers are identical either
	// way, only the pages read and access checks performed differ.
	DisablePathSummary bool
	// Trace, when set, receives the query's timestamped event log: every
	// span, page pin, page skip (with cause), candidate rejection, join
	// probe and emitted answer. Tracing is off (zero cost beyond nil
	// checks) when unset, unless StoreOptions.SlowQueryThreshold forces an
	// internal trace.
	Trace *QueryTrace
	// Analyze, when set, turns the query into ANALYZE: a full event trace
	// is forced on (even without Trace), and after execution the analysis
	// is filled with the compiled plan plus per-operator attribution —
	// pages, pool hits, skips, rejects, probes and span time per plan
	// operator, reconciling exactly with the pool's pin delta. Ignored by
	// QueryCursor (a streaming drain has no single completion point).
	Analyze *QueryAnalysis
	// Snapshot, when set, evaluates the query against that pinned
	// repeatable-read state (see Store.Snapshot) instead of the current
	// one: a sequence of queries sharing a Snapshot sees one committed
	// state regardless of concurrent updates.
	Snapshot *Snapshot
}

// QueryCtx evaluates the XPath expression as the given user under the
// given action mode, honoring ctx: cancellation aborts the evaluation at
// the next page-fetch boundary with ctx's error, leaving no page pinned.
// With opts.Limit set, at most that many answers are returned.
func (s *Store) QueryCtx(ctx context.Context, user, mode, xpath string, opts QueryOptions) ([]Match, error) {
	return s.run(ctx, user, mode, xpath, opts)
}

// QueryCursor is a streaming cursor over a query's answers: Next pulls one
// answer at a time through the operator pipeline, so the first answer
// surfaces — and, with an early Close, the only pages read are — before
// the full result is computed. Answers arrive in discovery order, not
// document order.
//
// The cursor pins its snapshot from QueryCursor until Close: updates
// proceed concurrently (they never wait for readers), but the cursor keeps
// answering from the state it pinned, and the pages of that state stay
// quarantined from reuse until the pin drops. Close is idempotent and must
// be called exactly once regardless of how far the cursor was drained.
type QueryCursor struct {
	s    *Store
	ref  snapRef
	a    *query.Answers
	done bool
	// tr is the effective trace (the caller's, or the slow-query log's
	// internal one); it must ride every ctx handed to the pipeline so page
	// pins during Next are attributed to this query.
	tr      *obs.Trace
	xpath   string
	fp      string
	answers int64
	finish  func(fp, xpath string, answers int64, err error)
}

// QueryCursor opens a streaming cursor for the XPath expression as the
// given user under the given action mode. ctx governs the cursor's whole
// lifetime. On error no snapshot pin is retained.
func (s *Store) QueryCursor(ctx context.Context, user, mode, xpath string, opts QueryOptions) (*QueryCursor, error) {
	qo := query.Options{
		Limit:              opts.Limit,
		Parallelism:        opts.Parallelism,
		DisableSummarySkip: opts.DisableSummarySkip,
		DisablePathSummary: opts.DisablePathSummary,
		Trace:              opts.Trace.inner(),
	}
	tr, finish := s.startQuery(&qo, false)
	ctx = obs.WithTrace(ctx, tr)
	endParse := tr.Span(obs.EvParse)
	pt, err := query.Parse(xpath)
	endParse()
	if err != nil {
		finish("", xpath, 0, err)
		return nil, err
	}
	fp := fingerprintFor(pt, opts)
	r, err := s.acquireFor(opts)
	if err != nil {
		finish(fp, xpath, 0, err)
		return nil, err
	}
	sn := r.sn
	tr.SnapshotPin(sn.seq)
	fail := func(err error) (*QueryCursor, error) {
		tr.SnapshotUnpin(sn.seq, time.Since(r.at))
		s.release(r)
		finish(fp, xpath, 0, err)
		return nil, err
	}
	if !opts.Unrestricted {
		view, err := s.viewAt(sn, user, mode)
		if err != nil {
			return fail(err)
		}
		qo.View = view
		if opts.Pruned {
			qo.Semantics = query.SemanticsPrunedSubtree
		}
	}
	if err := sn.idx.ensure(sn.st); err != nil {
		return fail(err)
	}
	a, err := evaluatorAt(sn).Open(ctx, pt, qo)
	if err != nil {
		return fail(err)
	}
	return &QueryCursor{s: s, ref: r, a: a, tr: tr, xpath: xpath, fp: fp, finish: finish}, nil
}

// Next returns the next answer; ok is false once the stream is exhausted
// or the Limit was reached. After an error or ok == false, only Close may
// be called.
func (c *QueryCursor) Next(ctx context.Context) (m Match, ok bool, err error) {
	ctx = obs.WithTrace(ctx, c.tr)
	n, ok, err := c.a.Next(ctx)
	if err != nil || !ok {
		return Match{}, false, err
	}
	c.s.queryAnswers.Inc()
	c.answers++
	return c.s.matchAt(ctx, c.ref.sn.st, n)
}

// Matches counts the combined pattern-match tuples consumed so far (the
// Result.Matches of a full drain).
func (c *QueryCursor) Matches() int { return c.a.Matches() }

// SkipStats reports how many page reads the query's fused skip mask has
// avoided so far, by cause. Valid until Close; snapshot before closing.
func (c *QueryCursor) SkipStats() SkipStats {
	sk := c.a.SkipStats()
	return SkipStats{
		AccessPages:    sk.AccessPages,
		StructPages:    sk.StructPages,
		Candidates:     sk.Candidates,
		PathCandidates: sk.PathCandidates,
		PathClasses:    sk.PathClasses,
		PathEmpty:      sk.PathEmpty,
	}
}

// Close stops the pipeline, releases its page pins and the cursor's
// snapshot pin. Idempotent.
func (c *QueryCursor) Close() error {
	if c.done {
		return nil
	}
	c.done = true
	// The cursor's contribution to the store-wide counters lands here,
	// once, so partial drains still account their skips and matches.
	c.s.queryMatches.Add(int64(c.a.Matches()))
	c.s.recordSkips(c.a.SkipStats())
	err := c.a.Close()
	c.tr.SnapshotUnpin(c.ref.sn.seq, time.Since(c.ref.at))
	c.s.release(c.ref)
	c.tr.Mark(obs.EvDone)
	c.finish(c.fp, c.xpath, c.answers, err)
	return err
}

// matchAt converts one result node ID to a Match record against the
// query's pinned store, honoring ctx.
func (s *Store) matchAt(ctx context.Context, st *nok.Store, n xmltree.NodeID) (Match, bool, error) {
	info, err := st.InfoCtx(ctx, n)
	if err != nil {
		return Match{}, false, err
	}
	m := Match{Node: NodeID(n), Tag: st.TagName(info.Entry.Tag)}
	if vs := st.Values(); vs != nil {
		v, err := vs.ValueCtx(ctx, n)
		if err != nil {
			return Match{}, false, err
		}
		m.Value = v
	}
	return m, true, nil
}
