package securexml

import (
	"context"

	"dolxml/internal/query"
	"dolxml/internal/xmltree"
)

// QueryOptions refine query execution for QueryCtx and QueryCursor.
type QueryOptions struct {
	// Pruned selects the Gabillon–Bruno semantics (§4.2): subtrees rooted
	// at inaccessible nodes contribute nothing. Ignored when Unrestricted.
	Pruned bool
	// Unrestricted evaluates without access control (administrative use);
	// the user and mode arguments are ignored.
	Unrestricted bool
	// Limit, when positive, stops evaluation after that many answers. The
	// cursor pipeline terminates early: pages beyond the last needed match
	// are never read.
	Limit int
	// Parallelism bounds the candidate-matching worker pool; 0 means
	// GOMAXPROCS, 1 forces sequential evaluation. Every setting yields the
	// same answers.
	Parallelism int
	// DisableSummarySkip turns off structure-aware page skipping (the
	// per-page summary half of the fused skip mask), for ablation. Answers
	// are identical either way; only the pages read differ.
	DisableSummarySkip bool
}

func (s *Store) queryOptions(user, mode string, opts QueryOptions) (query.Options, error) {
	qo := query.Options{
		Limit:              opts.Limit,
		Parallelism:        opts.Parallelism,
		DisableSummarySkip: opts.DisableSummarySkip,
	}
	if opts.Unrestricted {
		return qo, nil
	}
	view, err := s.viewFor(user, mode)
	if err != nil {
		return query.Options{}, err
	}
	qo.View = view
	if opts.Pruned {
		qo.Semantics = query.SemanticsPrunedSubtree
	}
	return qo, nil
}

// QueryCtx evaluates the XPath expression as the given user under the
// given action mode, honoring ctx: cancellation aborts the evaluation at
// the next page-fetch boundary with ctx's error, leaving no page pinned.
// With opts.Limit set, at most that many answers are returned.
func (s *Store) QueryCtx(ctx context.Context, user, mode, xpath string, opts QueryOptions) ([]Match, error) {
	qo, err := s.queryOptions(user, mode, opts)
	if err != nil {
		return nil, err
	}
	return s.run(ctx, xpath, qo)
}

// QueryCursor is a streaming cursor over a query's answers: Next pulls one
// answer at a time through the operator pipeline, so the first answer
// surfaces — and, with an early Close, the only pages read are — before
// the full result is computed. Answers arrive in discovery order, not
// document order.
//
// The cursor holds the store's read lock from QueryCursor until Close:
// queries may still run concurrently, but updates block. Close is
// idempotent and must be called exactly once regardless of how far the
// cursor was drained.
type QueryCursor struct {
	s    *Store
	a    *query.Answers
	done bool
}

// QueryCursor opens a streaming cursor for the XPath expression as the
// given user under the given action mode. ctx governs the cursor's whole
// lifetime. On error no lock is retained.
func (s *Store) QueryCursor(ctx context.Context, user, mode, xpath string, opts QueryOptions) (*QueryCursor, error) {
	qo, err := s.queryOptions(user, mode, opts)
	if err != nil {
		return nil, err
	}
	pt, err := query.Parse(xpath)
	if err != nil {
		return nil, err
	}
	if err := s.lockForQuery(); err != nil {
		return nil, err
	}
	a, err := s.evaluator().Open(ctx, pt, qo)
	if err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	return &QueryCursor{s: s, a: a}, nil
}

// Next returns the next answer; ok is false once the stream is exhausted
// or the Limit was reached. After an error or ok == false, only Close may
// be called.
func (c *QueryCursor) Next(ctx context.Context) (m Match, ok bool, err error) {
	n, ok, err := c.a.Next(ctx)
	if err != nil || !ok {
		return Match{}, false, err
	}
	return c.s.matchAt(ctx, n)
}

// Matches counts the combined pattern-match tuples consumed so far (the
// Result.Matches of a full drain).
func (c *QueryCursor) Matches() int { return c.a.Matches() }

// SkipStats reports how many page reads the query's fused skip mask has
// avoided so far, by cause. Valid until Close; snapshot before closing.
func (c *QueryCursor) SkipStats() SkipStats {
	sk := c.a.SkipStats()
	return SkipStats{
		AccessPages: sk.AccessPages,
		StructPages: sk.StructPages,
		Candidates:  sk.Candidates,
	}
}

// Close stops the pipeline, releases its page pins and the store's read
// lock. Idempotent.
func (c *QueryCursor) Close() error {
	if c.done {
		return nil
	}
	c.done = true
	err := c.a.Close()
	c.s.mu.RUnlock()
	return err
}

// matchAt converts one result node ID to a Match record, honoring ctx.
func (s *Store) matchAt(ctx context.Context, n xmltree.NodeID) (Match, bool, error) {
	st := s.ss.Store()
	info, err := st.InfoCtx(ctx, n)
	if err != nil {
		return Match{}, false, err
	}
	m := Match{Node: NodeID(n), Tag: st.TagName(info.Entry.Tag)}
	if vs := st.Values(); vs != nil {
		v, err := vs.ValueCtx(ctx, n)
		if err != nil {
			return Match{}, false, err
		}
		m.Value = v
	}
	return m, true, nil
}
