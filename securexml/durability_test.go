package securexml

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// This file covers the durability-mode surface of the group-commit work:
// concurrent committers under every mode while readers drain cursors (the
// CI -race job runs these), the async notification contract, and the
// graceful degradation of the async API on memory-backed stores.

// TestDurabilityModesConcurrentCommitters hammers one file-backed store
// per durability mode with three concurrent updaters (each toggling its own
// keyword node an even number of times, so the final state equals the
// initial state) while two readers drain query cursors the whole time.
// After a durability barrier the answers must be byte-identical to the
// pristine fixture, no pins may leak, and a reopen from disk must agree.
func TestDurabilityModesConcurrentCommitters(t *testing.T) {
	fx := buildRecoveryFixture(t, 800, 512)
	for _, tc := range []struct {
		name string
		mode Durability
	}{
		{"sync", DurabilitySync},
		{"grouped", DurabilityGrouped},
		{"async", DurabilityAsync},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fx.restore(t)
			s, err := Open(fx.dir, StoreOptions{PoolPages: 64, Durability: tc.mode})
			if err != nil {
				t.Fatal(err)
			}
			kws, err := s.Query("u", "read", "//listitem//keyword")
			if err != nil {
				t.Fatal(err)
			}
			const updaters = 3
			if len(kws) < updaters {
				t.Fatalf("fixture shows u only %d keywords, need %d", len(kws), updaters)
			}

			const rounds = 6
			var done atomic.Bool
			var updWg, readWg sync.WaitGroup
			errs := make(chan error, updaters+2)

			// Readers drain cursors for the whole updater run; every match
			// they see must be a well-formed keyword answer, whatever
			// interleaving of toggles was live when the cursor started.
			for r := 0; r < 2; r++ {
				readWg.Add(1)
				go func() {
					defer readWg.Done()
					ctx := context.Background()
					for !done.Load() {
						cur, err := s.QueryCursor(ctx, "u", "read", "//listitem//keyword", QueryOptions{})
						if err != nil {
							errs <- fmt.Errorf("reader open: %w", err)
							return
						}
						n := 0
						for {
							m, ok, err := cur.Next(ctx)
							if err != nil {
								cur.Close()
								errs <- fmt.Errorf("reader next: %w", err)
								return
							}
							if !ok {
								break
							}
							if m.Tag != "keyword" {
								cur.Close()
								errs <- fmt.Errorf("reader saw tag %q", m.Tag)
								return
							}
							n++
						}
						if err := cur.Close(); err != nil {
							errs <- fmt.Errorf("reader close: %w", err)
							return
						}
						if n > len(kws) {
							errs <- fmt.Errorf("reader saw %d keywords, fixture holds %d", n, len(kws))
							return
						}
					}
				}()
			}

			// Updaters toggle their own node: revoke then grant, so every
			// even round count restores the initial ACL.
			for g := 0; g < updaters; g++ {
				updWg.Add(1)
				go func(g int) {
					defer updWg.Done()
					node := kws[g].Node
					var pendings []*Commit
					for r := 0; r < rounds; r++ {
						for _, allowed := range []bool{false, true} {
							if tc.mode == DurabilityAsync && r%2 == 0 {
								c, err := s.SetAccessAsync("staff", "read", node, allowed, false)
								if err != nil {
									errs <- fmt.Errorf("updater %d: %w", g, err)
									return
								}
								pendings = append(pendings, c)
								continue
							}
							if err := s.SetAccess("staff", "read", node, allowed, false); err != nil {
								errs <- fmt.Errorf("updater %d: %w", g, err)
								return
							}
						}
					}
					for _, c := range pendings {
						if err := c.Wait(); err != nil {
							errs <- fmt.Errorf("updater %d wait: %w", g, err)
							return
						}
					}
				}(g)
			}

			updWg.Wait()
			done.Store(true)
			readWg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := s.AwaitDurable(); err != nil {
				t.Fatal(err)
			}
			if s.Failed() {
				t.Fatal("store poisoned by concurrent committers")
			}
			if got := answerFingerprint(t, s); got != fx.pre {
				t.Fatal("answers differ from pristine state after even toggle counts")
			}
			snap := s.MetricsSnapshot()
			if pinned := snap.Get("pool_pinned"); pinned != 0 {
				t.Fatalf("%d pages still pinned after the run", pinned)
			}
			wantCommits := int64(updaters * rounds * 2)
			if got := snap.Get("wal_commits"); got != wantCommits {
				t.Fatalf("wal_commits = %d, want %d", got, wantCommits)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(fx.dir, StoreOptions{PoolPages: 64})
			if err != nil {
				t.Fatalf("reopen after %s run: %v", tc.name, err)
			}
			if got := answerFingerprint(t, s2); got != fx.pre {
				t.Fatal("reopened store answers differ from pristine state")
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAsyncCommitNotification pins the notification contract: an async
// commit's effects are visible immediately, its Done channel stays open
// until the group flush covers it, and Wait/Err settle to nil once the
// flush lands. AwaitDurable is a full barrier.
func TestAsyncCommitNotification(t *testing.T) {
	fx := buildRecoveryFixture(t, 800, 512)
	fx.restore(t)
	s, err := Open(fx.dir, StoreOptions{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	kws, err := s.Query("u", "read", "//listitem//keyword")
	if err != nil {
		t.Fatal(err)
	}
	node := kws[0].Node

	s.wp.HoldFlushes()
	c, err := s.SetAccessAsync("staff", "read", node, false, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
		t.Fatal("commit reported durable before any flush ran")
	default:
	}
	if n := s.wp.PendingBatches(); n != 1 {
		t.Fatalf("pending batches = %d, want 1", n)
	}
	// The effect is visible to queries before durability.
	after, err := s.Query("u", "read", "//listitem//keyword")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(kws)-1 {
		t.Fatalf("revoke not visible: %d keywords, want %d", len(after), len(kws)-1)
	}
	if err := s.wp.ReleaseFlushes(); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done still open after the flush resolved the commit")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	// Grant it back asynchronously and use AwaitDurable as the barrier.
	c2, err := s.SetAccessAsync("staff", "read", node, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AwaitDurable(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Err(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("AwaitDurable returned with an unresolved commit outstanding")
	}
	if got := answerFingerprint(t, s); got != fx.pre {
		t.Fatal("toggle pair changed answers")
	}
}

// TestAsyncDegradesOnMemoryStore: on a store with no WAL there is nothing
// to defer, so the async API must return an already-durable commit rather
// than erroring.
func TestAsyncDegradesOnMemoryStore(t *testing.T) {
	s := hospitalStore(t, StoreOptions{Durability: DurabilityAsync})
	defer s.Close()
	target := firstNode(t, s, "//patient/name")
	c, err := s.SetAccessAsync("doctors", "read", target, false, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("memory-backed async commit not immediately resolved")
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.AwaitDurable(); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.UserAccessible("dave", "read", target); err != nil || ok {
		t.Fatalf("revoke not applied (ok=%v err=%v)", ok, err)
	}
}
