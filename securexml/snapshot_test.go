package securexml

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dolxml/internal/storage"
	"dolxml/internal/xmark"
)

// This file is the MVCC snapshot-isolation suite: queries pin immutable
// snapshots instead of holding locks, so readers and writers interleave
// freely. The tests assert the two properties that make that safe — every
// reader sees exactly one committed state (no torn updates), and versions
// retire (no page-quarantine leaks) — plus the repeatable-read API and the
// closed TOCTOU window around poisoning updates.

// snapFixtureXML builds a small XMark document string.
func snapFixtureXML(t *testing.T, nodes int) string {
	t.Helper()
	doc := xmark.Generate(xmark.Scaled(11, nodes))
	var sb strings.Builder
	if err := doc.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// snapStore seals the standard subject setup over the given document:
// user u reads through group staff, which can read everything except
// //annotation.
func snapStore(t *testing.T, xml string, opts StoreOptions) *Store {
	t.Helper()
	s, err := NewBuilder().
		LoadXMLString(xml).
		AddGroup("staff").
		AddUser("u").
		AddMember("staff", "u").
		Grant("staff", "read", "/site").
		Revoke("staff", "read", "//annotation").
		Seal(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drainSnapCursor fully drains one streaming cursor and returns a
// state-identifying fingerprint of its answers (sorted, so discovery order
// does not matter).
func drainSnapCursor(t *testing.T, s *Store, xpath string, opts QueryOptions) (string, error) {
	t.Helper()
	cur, err := s.QueryCursor(context.Background(), "u", "read", xpath, opts)
	if err != nil {
		return "", err
	}
	var lines []string
	for {
		m, ok, err := cur.Next(context.Background())
		if err != nil {
			cur.Close()
			return "", err
		}
		if !ok {
			break
		}
		lines = append(lines, fmt.Sprintf("%d=%s=%q", m.Node, m.Tag, m.Value))
	}
	if err := cur.Close(); err != nil {
		return "", err
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), nil
}

// queryFingerprint is drainCursor over the one-shot Query path.
func queryFingerprint(t *testing.T, s *Store, xpath string) string {
	t.Helper()
	ms, err := s.Query("u", "read", xpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(ms))
	for _, m := range ms {
		lines = append(lines, fmt.Sprintf("%d=%s=%q", m.Node, m.Tag, m.Value))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func gauge(t *testing.T, s *Store, name string) int64 {
	t.Helper()
	return s.MetricsSnapshot().Get(name)
}

// lastVisibleNode returns the last (highest node ID) match u can read, so
// tests can mutate late in document order — without shifting earlier node
// IDs — at a spot where inserted fragments inherit readable ACLs.
func lastVisibleNode(t *testing.T, s *Store, xpath string) NodeID {
	t.Helper()
	ms, err := s.Query("u", "read", xpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatalf("no visible match for %s", xpath)
	}
	return ms[len(ms)-1].Node
}

// TestInterleavedCursorsAndWriters is the core no-torn-updates property:
// N streaming cursors drain while M writers toggle access and
// insert/delete a fragment continuously. Every drain must equal one of the
// four legal committed states (toggle on/off × fragment present/absent),
// byte-for-byte — a cursor that observed half an update would produce a
// fifth fingerprint. Run with -race; also asserts versions retire once the
// cursors close.
func TestInterleavedCursorsAndWriters(t *testing.T) {
	const q = "//listitem//keyword"
	s := snapStore(t, snapFixtureXML(t, 1600), StoreOptions{PageSize: 512, PoolPages: 256})
	defer s.Close()

	// The toggle target is the first keyword in document order; the
	// fragment parent the last description, after it, so the toggle node's
	// ID is stable across insert/delete.
	toggle := firstNode(t, s, "//listitem//keyword")
	parent := lastVisibleNode(t, s, "//description")
	if parent <= toggle {
		t.Fatalf("fixture order broken: parent %d <= toggle %d", parent, toggle)
	}
	const frag = "<parlist><listitem><keyword>snapprobe</keyword></listitem></parlist>"
	fragRoot := parent + 1 // InsertXML with after=InvalidNode prepends

	// Precompute the four legal fingerprints sequentially.
	legal := make(map[string]string)
	setState := func(granted, present bool) {
		t.Helper()
		if err := s.SetAccess("staff", "read", toggle, granted, false); err != nil {
			t.Fatal(err)
		}
		if present {
			if err := s.InsertXML(parent, InvalidNode, frag); err != nil {
				t.Fatal(err)
			}
		}
	}
	clearFragment := func() {
		t.Helper()
		if err := s.Delete(fragRoot); err != nil {
			t.Fatal(err)
		}
	}
	base := queryFingerprint(t, s, q)
	for _, granted := range []bool{true, false} {
		for _, present := range []bool{false, true} {
			setState(granted, present)
			legal[queryFingerprint(t, s, q)] = fmt.Sprintf("granted=%v present=%v", granted, present)
			if present {
				clearFragment()
			}
		}
	}
	// Restore the base state and sanity-check the round trips.
	setState(true, false)
	if got := queryFingerprint(t, s, q); got != base {
		t.Fatalf("state round trip diverged:\n%s\nvs\n%s", got, base)
	}
	if len(legal) < 3 {
		t.Fatalf("fixture too degenerate: only %d distinct legal states", len(legal))
	}

	const (
		readers      = 4
		drainsPer    = 6
		maxWriterOps = 100000 // safety bound; readers pace the run
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+2)
	readersDone := make(chan struct{})

	// Writer 1: access toggles. Writers run until the readers have drained
	// their quota, so every drain races live updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < maxWriterOps; i++ {
			select {
			case <-readersDone:
				return
			default:
			}
			if err := s.SetAccess("staff", "read", toggle, i%2 == 0, false); err != nil {
				errs <- fmt.Errorf("toggle %d: %w", i, err)
				return
			}
		}
	}()
	// Writer 2: structural insert/delete cycles (exercises fresh-index
	// publication and page quarantine under concurrent readers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < maxWriterOps; i++ {
			select {
			case <-readersDone:
				return
			default:
			}
			if err := s.InsertXML(parent, InvalidNode, frag); err != nil {
				errs <- fmt.Errorf("insert %d: %w", i, err)
				return
			}
			if err := s.Delete(fragRoot); err != nil {
				errs <- fmt.Errorf("delete %d: %w", i, err)
				return
			}
		}
	}()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for drains := 0; drains < drainsPer; drains++ {
				fp, err := drainSnapCursor(t, s, q, QueryOptions{})
				if err != nil {
					errs <- fmt.Errorf("reader %d drain %d: %w", r, drains, err)
					return
				}
				if _, ok := legal[fp]; !ok {
					errs <- fmt.Errorf("reader %d drain %d saw a torn state:\n%s", r, drains, fp)
					return
				}
			}
		}(r)
	}
	rg.Wait()
	close(readersDone)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Version-leak check: with every cursor closed and writers quiescent,
	// exactly the current version must be live and its pins settled.
	if live := gauge(t, s, "snapshot_versions_live"); live != 1 {
		t.Errorf("snapshot_versions_live = %d after all cursors closed, want 1", live)
	}
	m := s.MetricsSnapshot()
	if pins, unpins := m.Get("snapshot_pins"), m.Get("snapshot_unpins"); pins != unpins {
		t.Errorf("snapshot pins %d != unpins %d after quiesce", pins, unpins)
	}
}

// TestSnapshotRepeatableRead pins an explicit Snapshot and asserts queries
// carrying it keep answering from that state, byte-identically, across
// updates that change the current answers — and that closing the handle
// lets its version retire.
func TestSnapshotRepeatableRead(t *testing.T) {
	const q = "//listitem//keyword"
	s := snapStore(t, snapFixtureXML(t, 1200), StoreOptions{PageSize: 512, PoolPages: 256})
	defer s.Close()

	toggle := firstNode(t, s, "//listitem//keyword")
	parent := firstNode(t, s, "/site/categories/category/description")

	sp, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pinnedOpts := QueryOptions{Snapshot: sp}
	before, err := drainSnapCursor(t, s, q, pinnedOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Change the world: revoke the toggle node and insert a fragment.
	if err := s.SetAccess("staff", "read", toggle, false, false); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertXML(parent, InvalidNode,
		"<parlist><listitem><keyword>rrprobe</keyword></listitem></parlist>"); err != nil {
		t.Fatal(err)
	}

	now, err := drainSnapCursor(t, s, q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if now == before {
		t.Fatal("updates did not change current answers; fixture too weak")
	}
	pinned, err := drainSnapCursor(t, s, q, pinnedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if pinned != before {
		t.Errorf("pinned snapshot answers drifted:\nbefore:\n%s\nafter updates:\n%s", before, pinned)
	}
	if live := gauge(t, s, "snapshot_versions_live"); live < 2 {
		t.Errorf("snapshot_versions_live = %d with a snapshot pinned across updates, want >= 2", live)
	}
	if sp.Seq() < 1 {
		t.Errorf("snapshot Seq = %d, want >= 1", sp.Seq())
	}

	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := drainSnapCursor(t, s, q, pinnedOpts); err == nil {
		t.Error("query against a closed snapshot succeeded")
	}
	if live := gauge(t, s, "snapshot_versions_live"); live != 1 {
		t.Errorf("snapshot_versions_live = %d after snapshot close, want 1", live)
	}
}

// TestUpdatesDoNotWaitForReaders is the zero reader-induced writer stalls
// acceptance: with a cursor opened and deliberately left mid-drain, a
// structural update must commit promptly instead of blocking until the
// cursor closes (the pre-MVCC behavior), and the cursor must keep
// answering from its pinned state afterwards.
func TestUpdatesDoNotWaitForReaders(t *testing.T) {
	const q = "//listitem//keyword"
	s := snapStore(t, snapFixtureXML(t, 1200), StoreOptions{PageSize: 512, PoolPages: 256})
	defer s.Close()

	wantFP := queryFingerprint(t, s, q)
	cur, err := s.QueryCursor(context.Background(), "u", "read", q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cur.Next(context.Background()); err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}

	// The cursor is open and pinned. The update must not block on it.
	done := make(chan error, 1)
	go func() {
		done <- s.Delete(firstNode(t, s, "/site/categories/category/description"))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("update blocked behind an open cursor")
	}

	// Drain the rest: answers come from the pinned pre-delete state.
	var lines []string
	for {
		m, ok, err := cur.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		lines = append(lines, fmt.Sprintf("%d=%s=%q", m.Node, m.Tag, m.Value))
	}
	// Re-add the first answer by re-running against a fresh pinned check:
	// the drained tail plus the first answer must cover wantFP exactly.
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n")
	if !strings.Contains(wantFP, got) && got != wantFP {
		// The cursor consumed one answer before the fingerprint drain, so
		// compare as a subset: every drained line must appear in wantFP.
		for _, ln := range lines {
			if !strings.Contains(wantFP, ln) {
				t.Errorf("post-update cursor answer %q not in pinned state", ln)
			}
		}
	}
	if live := gauge(t, s, "snapshot_versions_live"); live != 1 {
		t.Errorf("snapshot_versions_live = %d after cursor close, want 1", live)
	}
}

// TestQueryRacesPoisoningUpdate closes the old lockForQuery TOCTOU window:
// queries race an update whose group flush dies and poisons the store.
// Every concurrent query must either fail with the poisoned-store error or
// answer from a committed state (the pre-update or the sealed post-update
// fingerprint) — never from half-diverged in-memory state.
func TestQueryRacesPoisoningUpdate(t *testing.T) {
	const q = "//listitem//keyword"
	xml := snapFixtureXML(t, 1200)
	dir := t.TempDir()
	var ff *storage.FaultFile
	s, err := NewBuilder().
		LoadXMLString(xml).
		AddGroup("staff").
		AddUser("u").
		AddMember("staff", "u").
		Grant("staff", "read", "/site").
		Revoke("staff", "read", "//annotation").
		Seal(StoreOptions{
			Path: filepath.Join(dir, "pages.db"), PageSize: 512, PoolPages: 256,
			WrapWALFile: func(f storage.File) storage.File {
				ff = storage.NewFaultFile(f)
				return ff
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	toggle := firstNode(t, s, q)
	preFP := queryFingerprint(t, s, q)
	// The sealed-but-unflushed post-update state is also a legal answer:
	// compute it on a twin store built from the same document.
	twin := snapStore(t, xml, StoreOptions{PageSize: 512, PoolPages: 256})
	if err := twin.SetAccess("staff", "read", toggle, false, false); err != nil {
		t.Fatal(err)
	}
	postFP := queryFingerprint(t, twin, q)
	twin.Close()

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ms, err := s.Query("u", "read", q)
				if err != nil {
					if !errors.Is(err, errStoreFailed) {
						errs <- fmt.Errorf("reader %d: unexpected error %w", r, err)
					}
					continue
				}
				lines := make([]string, 0, len(ms))
				for _, m := range ms {
					lines = append(lines, fmt.Sprintf("%d=%s=%q", m.Node, m.Tag, m.Value))
				}
				sort.Strings(lines)
				fp := strings.Join(lines, "\n")
				if fp != preFP && fp != postFP {
					errs <- fmt.Errorf("reader %d iteration %d saw a torn state:\n%s", r, i, fp)
					return
				}
			}
		}(r)
	}

	// Let the readers spin up, then poison: the next log write dies, so
	// the update's flush fails after its batch sealed.
	time.Sleep(5 * time.Millisecond)
	ff.Arm(storage.Fault{Op: storage.FaultWrite, N: 1})
	if err := s.SetAccess("staff", "read", toggle, false, false); err == nil {
		t.Error("poisoning update reported success")
	}
	if !s.Failed() {
		t.Error("store not poisoned after failed flush")
	}
	// New queries must now fail fast with the poisoned-store error.
	if _, err := s.Query("u", "read", q); !errors.Is(err, errStoreFailed) {
		t.Errorf("query on poisoned store: %v, want errStoreFailed", err)
	}
	close(stop)
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSlowPinLog asserts the slow-pin reporting satellite: a pin held past
// SlowPinThreshold produces one serialized report naming the sequence.
func TestSlowPinLog(t *testing.T) {
	var buf bytes.Buffer
	s := snapStore(t, snapFixtureXML(t, 400), StoreOptions{
		PageSize: 512, PoolPages: 128,
		SlowPinThreshold: time.Nanosecond,
		SlowPinLog:       &buf,
	})
	defer s.Close()
	if _, err := s.Query("u", "read", "//listitem//keyword"); err != nil {
		t.Fatal(err)
	}
	s.slowMu.Lock()
	out := buf.String()
	s.slowMu.Unlock()
	if !strings.Contains(out, "slow snapshot pin") {
		t.Errorf("slow-pin log missing report, got %q", out)
	}
	if !strings.Contains(out, "seq=") {
		t.Errorf("slow-pin report missing seq, got %q", out)
	}
}
