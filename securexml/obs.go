package securexml

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"dolxml/internal/obs"
	"dolxml/internal/query"
	"dolxml/internal/storage"
)

// initObs builds the store's metrics registry and registers every layer's
// counters under their canonical names (the table in DESIGN.md §11). Called
// once from Seal and Open, after the pool, secure store and pager exist.
func (s *Store) initObs() error {
	s.reg = obs.NewRegistry()
	if err := s.pool.RegisterMetrics(s.reg, "pool"); err != nil {
		return err
	}
	pager := s.pool.Pager()
	for _, g := range []struct {
		name string
		fn   obs.Gauge
	}{
		{"io_reads", func() int64 { return pager.Stats().Reads }},
		{"io_writes", func() int64 { return pager.Stats().Writes }},
		{"io_allocs", func() int64 { return pager.Stats().Allocs }},
	} {
		if err := s.reg.RegisterGauge(g.name, g.fn); err != nil {
			return err
		}
	}
	if wp, ok := pager.(*storage.WALPager); ok {
		if err := wp.RegisterMetrics(s.reg, "wal"); err != nil {
			return err
		}
	}
	if err := s.ss.Store().RegisterMetrics(s.reg, "decode_cache"); err != nil {
		return err
	}
	if err := s.ss.RegisterMetrics(s.reg, "view"); err != nil {
		return err
	}
	// Store-shape gauges sample the published snapshot: a lock-free,
	// immutable view, so metric exports never race an update.
	for _, g := range []struct {
		name string
		fn   func(sn *snapshot) int64
	}{
		{"store_nodes", func(sn *snapshot) int64 { return int64(sn.st.NumNodes()) }},
		{"store_pages", func(sn *snapshot) int64 { return int64(sn.st.NumPages()) }},
		{"directory_bytes", func(sn *snapshot) int64 { return int64(sn.st.DirectoryBytes()) }},
		{"summary_bytes", func(sn *snapshot) int64 { return int64(sn.st.SummaryBytes()) }},
		{"codebook_bytes", func(sn *snapshot) int64 { return int64(sn.ss.Codebook().Bytes()) }},
		{"codebook_entries", func(sn *snapshot) int64 { return int64(sn.ss.Codebook().Len()) }},
		{"codebook_subjects", func(sn *snapshot) int64 { return int64(sn.ss.Codebook().NumSubjects()) }},
	} {
		fn := g.fn
		if err := s.reg.RegisterGauge(g.name, func() int64 {
			sn := s.cur.Load()
			if sn == nil {
				return 0
			}
			return fn(sn)
		}); err != nil {
			return err
		}
	}
	// Snapshot lifecycle metrics: how many versions are live (1 when
	// quiescent), how long pins are held, and how far behind the oldest
	// pinned reader is.
	if err := s.reg.RegisterGauge("snapshot_versions_live", func() int64 {
		return int64(s.vt.LiveVersions())
	}); err != nil {
		return err
	}
	if err := s.reg.RegisterGauge("snapshot_oldest_pin_age_us", func() int64 {
		return s.vt.OldestPinnedAge(time.Now()).Microseconds()
	}); err != nil {
		return err
	}
	s.snapPins = s.reg.Counter("snapshot_pins")
	s.snapUnpins = s.reg.Counter("snapshot_unpins")
	s.snapPinUs = s.reg.Histogram("snapshot_pin_us")
	s.queryTotal = s.reg.Counter("query_total")
	s.queryErrors = s.reg.Counter("query_errors")
	s.querySlow = s.reg.Counter("query_slow_total")
	s.queryAnswers = s.reg.Counter("query_answers_total")
	s.queryMatches = s.reg.Counter("query_matches_total")
	s.skipAccess = s.reg.Counter("query_pages_skipped_access")
	s.skipStruct = s.reg.Counter("query_pages_skipped_struct")
	s.candRejects = s.reg.Counter("query_candidates_rejected")
	s.pathRejects = s.reg.Counter("query_candidates_rejected_path")
	s.pathEmpties = s.reg.Counter("query_path_empty_total")
	s.pathClasses = s.reg.Counter("query_path_classes_preresolved")
	s.queryLatency = s.reg.Histogram("query_latency_us")
	// The mask-compilation counters predate the registry (the first
	// snapshot's MaskCache captures them in initSnapshot); register the
	// existing counters rather than minting fresh ones.
	if err := s.reg.RegisterCounter("skipmask_compile_hits", s.maskHits); err != nil {
		return err
	}
	if err := s.reg.RegisterCounter("skipmask_compile_misses", s.maskMisses); err != nil {
		return err
	}
	if err := s.reg.RegisterGauge("path_summary_bytes", func() int64 {
		sn := s.cur.Load()
		if sn == nil {
			return 0
		}
		return int64(sn.st.PathSummaryBytes())
	}); err != nil {
		return err
	}
	return nil
}

// recordSkips folds one query's skip counters into the store-wide
// registry. dolcli's -stats output and dolbench both read the registry, so
// every reporting surface sees the same numbers.
func (s *Store) recordSkips(sk query.SkipStats) {
	s.skipAccess.Add(sk.AccessPages)
	s.skipStruct.Add(sk.StructPages)
	s.candRejects.Add(sk.Candidates)
	s.pathRejects.Add(sk.PathCandidates)
	s.pathEmpties.Add(sk.PathEmpty)
	s.pathClasses.Add(sk.PathClasses)
}

// startQuery prepares one query's observability state: it resolves the
// effective trace (the caller's, or an internal one when the slow-query
// log is armed), stamps the start time, and returns the finish hook that
// records latency, error and slow-query metrics.
func (s *Store) startQuery(qo *query.Options) (tr *obs.Trace, finish func(xpath string, err error)) {
	tr = qo.Trace
	slow := s.opts.SlowQueryThreshold
	if tr == nil && slow > 0 {
		// The slow-query log needs the trace that explains the offending
		// query, so the threshold forces tracing on.
		tr = obs.NewTrace()
		qo.Trace = tr
	}
	start := time.Now()
	s.queryTotal.Inc()
	return tr, func(xpath string, err error) {
		elapsed := time.Since(start)
		s.queryLatency.Observe(elapsed.Microseconds())
		if err != nil {
			s.queryErrors.Inc()
			return
		}
		if slow > 0 && elapsed >= slow {
			s.querySlow.Inc()
			w := s.opts.SlowQueryLog
			if w == nil {
				w = os.Stderr
			}
			// Render the whole report first and emit it in one locked
			// write: concurrent queries finish on their own goroutines.
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "securexml: slow query (%v >= %v): %s\n", elapsed.Round(time.Microsecond), slow, xpath)
			tr.WriteTo(&buf)
			s.slowMu.Lock()
			w.Write(buf.Bytes())
			s.slowMu.Unlock()
		}
	}
}
