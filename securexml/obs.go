package securexml

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"time"

	"dolxml/internal/obs"
	"dolxml/internal/query"
	"dolxml/internal/storage"
)

// initObs builds the store's metrics registry and registers every layer's
// counters under their canonical names (the table in DESIGN.md §11). Called
// once from Seal and Open, after the pool, secure store and pager exist.
func (s *Store) initObs() error {
	s.reg = obs.NewRegistry()
	if err := s.pool.RegisterMetrics(s.reg, "pool"); err != nil {
		return err
	}
	pager := s.pool.Pager()
	for _, g := range []struct {
		name string
		fn   obs.Gauge
	}{
		{"io_reads", func() int64 { return pager.Stats().Reads }},
		{"io_writes", func() int64 { return pager.Stats().Writes }},
		{"io_allocs", func() int64 { return pager.Stats().Allocs }},
	} {
		if err := s.reg.RegisterGauge(g.name, g.fn); err != nil {
			return err
		}
	}
	if wp, ok := pager.(*storage.WALPager); ok {
		if err := wp.RegisterMetrics(s.reg, "wal"); err != nil {
			return err
		}
	}
	if err := s.ss.Store().RegisterMetrics(s.reg, "decode_cache"); err != nil {
		return err
	}
	if err := s.ss.RegisterMetrics(s.reg, "view"); err != nil {
		return err
	}
	// Store-shape gauges sample the published snapshot: a lock-free,
	// immutable view, so metric exports never race an update.
	for _, g := range []struct {
		name string
		fn   func(sn *snapshot) int64
	}{
		{"store_nodes", func(sn *snapshot) int64 { return int64(sn.st.NumNodes()) }},
		{"store_pages", func(sn *snapshot) int64 { return int64(sn.st.NumPages()) }},
		{"directory_bytes", func(sn *snapshot) int64 { return int64(sn.st.DirectoryBytes()) }},
		{"summary_bytes", func(sn *snapshot) int64 { return int64(sn.st.SummaryBytes()) }},
		{"codebook_bytes", func(sn *snapshot) int64 { return int64(sn.ss.Codebook().Bytes()) }},
		{"codebook_entries", func(sn *snapshot) int64 { return int64(sn.ss.Codebook().Len()) }},
		{"codebook_subjects", func(sn *snapshot) int64 { return int64(sn.ss.Codebook().NumSubjects()) }},
	} {
		fn := g.fn
		if err := s.reg.RegisterGauge(g.name, func() int64 {
			sn := s.cur.Load()
			if sn == nil {
				return 0
			}
			return fn(sn)
		}); err != nil {
			return err
		}
	}
	// Snapshot lifecycle metrics: how many versions are live (1 when
	// quiescent), how long pins are held, and how far behind the oldest
	// pinned reader is.
	if err := s.reg.RegisterGauge("snapshot_versions_live", func() int64 {
		return int64(s.vt.LiveVersions())
	}); err != nil {
		return err
	}
	if err := s.reg.RegisterGauge("snapshot_oldest_pin_age_us", func() int64 {
		return s.vt.OldestPinnedAge(time.Now()).Microseconds()
	}); err != nil {
		return err
	}
	s.snapPins = s.reg.Counter("snapshot_pins")
	s.snapUnpins = s.reg.Counter("snapshot_unpins")
	s.snapPinUs = s.reg.Histogram("snapshot_pin_us")
	s.queryTotal = s.reg.Counter("query_total")
	s.queryErrors = s.reg.Counter("query_errors")
	s.querySlow = s.reg.Counter("query_slow_total")
	s.queryAnswers = s.reg.Counter("query_answers_total")
	s.queryMatches = s.reg.Counter("query_matches_total")
	s.skipAccess = s.reg.Counter("query_pages_skipped_access")
	s.skipStruct = s.reg.Counter("query_pages_skipped_struct")
	s.candRejects = s.reg.Counter("query_candidates_rejected")
	s.pathRejects = s.reg.Counter("query_candidates_rejected_path")
	s.pathEmpties = s.reg.Counter("query_path_empty_total")
	s.pathClasses = s.reg.Counter("query_path_classes_preresolved")
	s.queryLatency = s.reg.Histogram("query_latency_us")
	// The flight recorder and its spill counter: every query — traced or
	// not — leaves a digest in the bounded ring, and any event a full
	// trace had to drop past its limit is counted store-wide.
	s.rec = obs.NewRecorder(0, 0, 0)
	s.traceDropped = s.reg.Counter("query_trace_dropped_total")
	if err := s.reg.RegisterGauge("recorder_queries", func() int64 {
		return s.rec.Total()
	}); err != nil {
		return err
	}
	if err := s.reg.RegisterGauge("recorder_fingerprints", func() int64 {
		return int64(s.rec.Fingerprints())
	}); err != nil {
		return err
	}
	// Per-store SLO accounting: the objective is a latency bound; the burn
	// rate compares the observed over-objective fraction with the error
	// budget (1 - target), in permille — 1000 means burning the budget
	// exactly as fast as the SLO allows.
	s.sloFinished = s.reg.Counter("slo_queries_total")
	s.sloOver = s.reg.Counter("slo_queries_over_objective")
	if err := s.reg.RegisterGauge("slo_latency_objective_us", func() int64 {
		if d := s.opts.SLOLatency; d > 0 {
			return d.Microseconds()
		}
		return 0
	}); err != nil {
		return err
	}
	if err := s.reg.RegisterGauge("slo_burn_rate_permille", func() int64 {
		return sloBurnPermille(s.sloOver.Load(), s.sloFinished.Load(), s.opts.SLOTarget)
	}); err != nil {
		return err
	}
	for name, help := range map[string]string{
		"query_total":                    "Queries started.",
		"query_errors":                   "Queries that finished with an error.",
		"query_slow_total":               "Queries at or over the slow-query threshold.",
		"query_answers_total":            "Answer nodes returned across all queries.",
		"query_matches_total":            "Combined pattern-match tuples consumed.",
		"query_pages_skipped_access":     "Pages skipped because the access mask proved them dead.",
		"query_pages_skipped_struct":     "Pages skipped because the structure summary proved them dead.",
		"query_candidates_rejected":      "Candidate nodes rejected before matching.",
		"query_candidates_rejected_path": "Candidates rejected by path-class filtering.",
		"query_path_empty_total":         "Queries proven empty by the path summary alone.",
		"query_path_classes_preresolved": "Uniform path classes whose access verdict was preresolved.",
		"query_latency_us":               "Query latency in microseconds.",
		"query_trace_dropped_total":      "Trace events discarded past a trace's event limit.",
		"recorder_queries":               "Queries recorded by the flight recorder since open.",
		"recorder_fingerprints":          "Distinct query fingerprints the recorder currently tracks.",
		"slo_queries_total":              "Queries counted against the latency SLO.",
		"slo_queries_over_objective":     "Queries that finished over the SLO latency objective.",
		"slo_latency_objective_us":       "Configured SLO latency objective in microseconds (0 when unset).",
		"slo_burn_rate_permille":         "Error-budget burn rate in permille; 1000 burns the budget exactly at the SLO rate.",
		"skipmask_compile_hits":          "Skip-mask compilations served from the mask cache.",
		"skipmask_compile_misses":        "Skip-mask compilations that had to run.",
		"snapshot_pins":                  "Snapshot pins taken by queries and cursors.",
		"snapshot_unpins":                "Snapshot pins released.",
		"snapshot_pin_us":                "Snapshot pin hold time in microseconds.",
		"snapshot_versions_live":         "Live store versions (1 when quiescent).",
		"snapshot_oldest_pin_age_us":     "Age of the oldest pinned snapshot in microseconds.",
		"path_summary_bytes":             "Serialized path-summary size in bytes.",
		"io_reads":                       "Physical page reads issued by the pager.",
		"io_writes":                      "Physical page writes issued by the pager.",
		"io_allocs":                      "Pages allocated by the pager.",
		"store_nodes":                    "Nodes in the current store snapshot.",
		"store_pages":                    "Pages in the current store snapshot.",
		"directory_bytes":                "In-memory page directory size in bytes.",
		"summary_bytes":                  "In-memory structure summary size in bytes.",
		"codebook_bytes":                 "In-memory access codebook size in bytes.",
		"codebook_entries":               "Distinct transition codes in the codebook.",
		"codebook_subjects":              "Subjects covered by the codebook.",
	} {
		s.reg.SetHelp(name, help)
	}
	// The mask-compilation counters predate the registry (the first
	// snapshot's MaskCache captures them in initSnapshot); register the
	// existing counters rather than minting fresh ones.
	if err := s.reg.RegisterCounter("skipmask_compile_hits", s.maskHits); err != nil {
		return err
	}
	if err := s.reg.RegisterCounter("skipmask_compile_misses", s.maskMisses); err != nil {
		return err
	}
	if err := s.reg.RegisterGauge("path_summary_bytes", func() int64 {
		sn := s.cur.Load()
		if sn == nil {
			return 0
		}
		return int64(sn.st.PathSummaryBytes())
	}); err != nil {
		return err
	}
	return nil
}

// recordSkips folds one query's skip counters into the store-wide
// registry. dolcli's -stats output and dolbench both read the registry, so
// every reporting surface sees the same numbers.
func (s *Store) recordSkips(sk query.SkipStats) {
	s.skipAccess.Add(sk.AccessPages)
	s.skipStruct.Add(sk.StructPages)
	s.candRejects.Add(sk.Candidates)
	s.pathRejects.Add(sk.PathCandidates)
	s.pathEmpties.Add(sk.PathEmpty)
	s.pathClasses.Add(sk.PathClasses)
}

// sloBurnPermille computes the error-budget burn rate: the observed
// over-objective fraction divided by the budget (1 - target), in
// permille. 0 before any query finishes or when the target leaves no
// budget to divide by.
func sloBurnPermille(over, finished int64, target float64) int64 {
	if finished == 0 {
		return 0
	}
	budget := 1 - target
	if budget <= 0 {
		return 0
	}
	return int64(math.Round(float64(over) / float64(finished) / budget * 1000))
}

// startQuery prepares one query's observability state: it resolves the
// effective trace — the caller's; a forced full trace when the slow-query
// log is armed or the query is an ANALYZE; otherwise the always-on
// counting trace that feeds the flight recorder without retaining events
// — stamps the start time, and returns the finish hook that records
// latency, error, SLO and slow-query metrics and files the query's
// digest with the recorder.
func (s *Store) startQuery(qo *query.Options, analyze bool) (tr *obs.Trace, finish func(fp, xpath string, answers int64, err error)) {
	tr = qo.Trace
	slow := s.opts.SlowQueryThreshold
	if tr == nil {
		if slow > 0 || analyze {
			// The slow-query log and ANALYZE both need the full event log
			// that explains the query, so they force tracing on.
			tr = obs.NewTrace()
		} else {
			tr = obs.NewCountingTrace()
		}
		qo.Trace = tr
	}
	tr.SetDropCounter(s.traceDropped)
	start := time.Now()
	s.queryTotal.Inc()
	return tr, func(fp, xpath string, answers int64, err error) {
		elapsed := time.Since(start)
		us := elapsed.Microseconds()
		s.queryLatency.Observe(us)
		s.sloFinished.Inc()
		if obj := s.opts.SLOLatency; obj > 0 && elapsed > obj {
			s.sloOver.Inc()
		}
		pins, hits, skipA, skipS, _ := tr.Counts()
		d := obs.QueryDigest{
			Fingerprint:   fp,
			XPath:         xpath,
			LatencyUs:     us,
			Pages:         pins,
			Hits:          hits,
			SkippedAccess: skipA,
			SkippedStruct: skipS,
			Answers:       answers,
		}
		d.Err = err != nil
		s.rec.Record(d, tr)
		if err != nil {
			s.queryErrors.Inc()
			return
		}
		if slow > 0 && elapsed >= slow {
			s.querySlow.Inc()
			w := s.opts.SlowQueryLog
			if w == nil {
				w = os.Stderr
			}
			// Render the whole report first and emit it in one locked
			// write: concurrent queries finish on their own goroutines.
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "securexml: slow query (%v >= %v): %s\n", elapsed.Round(time.Microsecond), slow, xpath)
			tr.WriteTo(&buf)
			s.slowMu.Lock()
			w.Write(buf.Bytes())
			s.slowMu.Unlock()
		}
	}
}
