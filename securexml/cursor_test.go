package securexml

import (
	"context"
	"errors"
	"sort"
	"testing"
)

func drainCursor(t *testing.T, c *QueryCursor) []Match {
	t.Helper()
	var out []Match
	for {
		m, ok, err := c.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, m)
	}
}

func sortedNodes(ms []Match) []NodeID {
	out := make([]NodeID, len(ms))
	for i, m := range ms {
		out[i] = m.Node
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Draining a cursor must yield exactly the answers of the corresponding
// batch query, for every user/semantics combination.
func TestQueryCursorMatchesQuery(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()

	cases := []struct {
		name  string
		opts  QueryOptions
		user  string
		xpath string
	}{
		{"doctor", QueryOptions{}, "dave", "//patient"},
		{"doctor pruned", QueryOptions{Pruned: true}, "dave", "//diagnosis"},
		{"nurse", QueryOptions{}, "alice", "//patient/name"},
		{"admin", QueryOptions{Unrestricted: true}, "", "//billing"},
	}
	for _, tc := range cases {
		want, err := s.QueryCtx(context.Background(), tc.user, "read", tc.xpath, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		c, err := s.QueryCursor(context.Background(), tc.user, "read", tc.xpath, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := drainCursor(t, c)
		if err := c.Close(); err != nil {
			t.Fatalf("%s close: %v", tc.name, err)
		}
		gw, ww := sortedNodes(got), sortedNodes(want)
		if len(gw) != len(ww) {
			t.Fatalf("%s: cursor %v, query %v", tc.name, gw, ww)
		}
		for i := range gw {
			if gw[i] != ww[i] {
				t.Fatalf("%s: cursor %v, query %v", tc.name, gw, ww)
			}
		}
	}
}

// Limit stops the cursor after N answers, and the batch QueryCtx honors it
// too; an early Close must release the cursor's snapshot pin so its
// version can retire.
func TestQueryCursorLimitAndEarlyClose(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()

	all, err := s.Query("dave", "read", "//patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("dave sees %d patients, want 3", len(all))
	}

	got, err := s.QueryCtx(context.Background(), "dave", "read", "//patient", QueryOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Limit=2 returned %d answers", len(got))
	}

	c, err := s.QueryCursor(context.Background(), "dave", "read", "//patient", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Next(context.Background()); err != nil || !ok {
		t.Fatalf("first answer: ok=%v err=%v", ok, err)
	}
	// Close with answers still pending, twice (idempotent).
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The snapshot pin is released: an update proceeds and the version
	// count settles.
	if err := s.SetAccess("alice", "read", all[0].Node, true, false); err != nil {
		t.Fatal(err)
	}
}

// Cancelling the cursor's context surfaces context.Canceled from Next.
func TestQueryCursorCancellation(t *testing.T) {
	s := hospitalStore(t, StoreOptions{})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c, err := s.QueryCursor(ctx, "dave", "read", "//patient", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok, err := c.Next(ctx); err != nil || !ok {
		t.Fatalf("first answer: ok=%v err=%v", ok, err)
	}
	cancel()
	if _, _, err := c.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
}
