package securexml

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dolxml/internal/storage"
	"dolxml/internal/xmark"
)

// This file is the crash-recovery test matrix: for every update kind, a
// clean probe run counts the physical operations of the commit protocol
// (log appends, log syncs, data-page writes, data syncs), then the update
// is re-run from the same pristine on-disk state with a crash injected at
// every one of those points — failed and torn variants alike. After each
// crash the store directory is reopened (which runs WAL recovery and the
// full consistency check) and the Q1–Q6 answers under both secure
// semantics must equal exactly the pre-update or the post-update state,
// with the protocol determining which: anything before the commit record
// is durable rolls back, anything after rolls forward.

// recoveryQueries is the paper's Table 1 workload (see bench.Table1),
// evaluated under both the bindings and the pruned semantics.
var recoveryQueries = []string{
	"/site/regions/africa/item[location][name][quantity]",   // Q1
	"/site/categories/category[name]/description/text/bold", // Q2
	"/site/categories/category/description/text/bold",       // Q3
	"//parlist//parlist",  // Q4
	"//listitem//keyword", // Q5
	"//item//emph",        // Q6
}

// recoveryFixture is a saved XMark store directory plus a byte snapshot of
// its pristine files, so every matrix entry restarts from the same disk.
type recoveryFixture struct {
	dir  string
	snap map[string][]byte
	pre  string // answer fingerprint of the pristine store
}

func buildRecoveryFixture(t *testing.T, targetNodes, pageSize int) *recoveryFixture {
	t.Helper()
	dir := t.TempDir()
	doc := xmark.Generate(xmark.Scaled(7, targetNodes))
	var xb strings.Builder
	if err := doc.WriteXML(&xb); err != nil {
		t.Fatal(err)
	}
	// u's access flows only through staff, so revoking a single staff bit
	// provably changes u's answers; aux is an empty group for membership
	// updates that must not change answers.
	s, err := NewBuilder().
		LoadXMLString(xb.String()).
		AddGroup("staff").
		AddGroup("aux").
		AddUser("u").
		AddMember("staff", "u").
		Grant("staff", "read", "/site").
		Revoke("staff", "read", "//annotation").
		Seal(StoreOptions{Path: filepath.Join(dir, "pages.db"), PageSize: pageSize, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	// One pre-snapshot revoke leaves redundant transitions behind, so the
	// vacuum update kind has real work to do.
	if err := s.SetAccess("staff", "read", firstNode(t, s, "//parlist/listitem"), false, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	pre := answerFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return &recoveryFixture{dir: dir, snap: snapshotDir(t, dir), pre: pre}
}

func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = b
	}
	return snap
}

func (fx *recoveryFixture) restore(t *testing.T) {
	t.Helper()
	entries, err := os.ReadDir(fx.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, keep := fx.snap[e.Name()]; !keep {
			if err := os.Remove(filepath.Join(fx.dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, b := range fx.snap {
		if err := os.WriteFile(filepath.Join(fx.dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// openWithFaults opens the fixture with fault-injection wrappers on both
// the data pager and the WAL file. The wrappers start unarmed (counting
// only); the Open itself must succeed.
func (fx *recoveryFixture) openWithFaults(t *testing.T) (*Store, *storage.FaultPager, *storage.FaultFile) {
	t.Helper()
	var fp *storage.FaultPager
	var ff *storage.FaultFile
	s, err := Open(fx.dir, StoreOptions{
		PoolPages: 64,
		WrapPager: func(p storage.Pager) storage.Pager {
			fp = storage.NewFaultPager(p)
			return fp
		},
		WrapWALFile: func(f storage.File) storage.File {
			ff = storage.NewFaultFile(f)
			return ff
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, fp, ff
}

// answerFingerprint runs the Q1–Q6 workload under both semantics and
// serializes every answer (node, tag, value), so two fingerprints are
// equal exactly when the two stores answer identically.
func answerFingerprint(t *testing.T, s *Store) string {
	t.Helper()
	var sb strings.Builder
	for _, q := range recoveryQueries {
		for _, pruned := range []bool{false, true} {
			var ms []Match
			var err error
			if pruned {
				ms, err = s.QueryPruned("u", "read", q)
			} else {
				ms, err = s.Query("u", "read", q)
			}
			if err != nil {
				t.Fatalf("query %s (pruned=%v): %v", q, pruned, err)
			}
			fmt.Fprintf(&sb, "%s pruned=%v:", q, pruned)
			for _, m := range ms {
				fmt.Fprintf(&sb, " %d=%s=%q", m.Node, m.Tag, m.Value)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// updateKind is one user-visible update, expressed against whatever node
// IDs the pristine store holds (resolved fresh on every open, since the
// fixture is restored between entries).
type updateKind struct {
	name  string
	apply func(t *testing.T, s *Store) error
}

func firstNode(t *testing.T, s *Store, xpath string) NodeID {
	t.Helper()
	ms, err := s.QueryUnrestricted(xpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatalf("no match for %s", xpath)
	}
	return ms[0].Node
}

func recoveryUpdateKinds() []updateKind {
	return []updateKind{
		{"set-node-access", func(t *testing.T, s *Store) error {
			// Revoking staff on a node u currently sees changes Q5.
			return s.SetAccess("staff", "read", firstNode(t, s, "//listitem//keyword"), false, false)
		}},
		{"set-subtree-access", func(t *testing.T, s *Store) error {
			return s.SetAccess("staff", "read", firstNode(t, s, "/site/regions/africa/item"), false, true)
		}},
		{"insert", func(t *testing.T, s *Store) error {
			return s.InsertXML(firstNode(t, s, "/site/regions/africa/item"), InvalidNode,
				"<parlist><listitem><text>recovery probe text</text></listitem></parlist>")
		}},
		{"delete", func(t *testing.T, s *Store) error {
			return s.Delete(firstNode(t, s, "//parlist//parlist"))
		}},
		{"move", func(t *testing.T, s *Store) error {
			return s.Move(firstNode(t, s, "//parlist//parlist"),
				firstNode(t, s, "/site/categories/category/description"), InvalidNode)
		}},
		{"add-user", func(t *testing.T, s *Store) error {
			return s.AddUserLike("w", "u")
		}},
		{"add-member", func(t *testing.T, s *Store) error {
			return s.AddMember("aux", "u")
		}},
		{"vacuum", func(t *testing.T, s *Store) error {
			// The fixture baked in a revoke, so there are redundant
			// transitions to merge.
			return s.Vacuum()
		}},
	}
}

// faultPoint is one crash site in the commit protocol.
type faultPoint struct {
	target string // "log" or "data"
	fault  storage.Fault
}

func (p faultPoint) String() string {
	op := "write"
	if p.fault.Op == storage.FaultSync {
		op = "sync"
	}
	torn := ""
	if p.fault.Torn {
		torn = " torn"
	}
	return fmt.Sprintf("%s %s #%d%s", p.target, op, p.fault.N, torn)
}

func TestRecoveryFaultMatrix(t *testing.T) {
	fx := buildRecoveryFixture(t, 500, 512)
	for _, kind := range recoveryUpdateKinds() {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			// Probe: run the update cleanly, counting the operations of
			// its commit, and capture the post-update answers.
			fx.restore(t)
			s, fp, ff := fx.openWithFaults(t)
			fp.Arm(storage.Fault{}) // reset counters accumulated during Open
			ff.Arm(storage.Fault{})
			if err := kind.apply(t, s); err != nil {
				t.Fatalf("clean %s: %v", kind.name, err)
			}
			dataWrites, dataSyncs, _ := fp.Counts()
			logAppends, logSyncs, _ := ff.Counts()
			post := answerFingerprint(t, s)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if kind.name == "add-member" && post != fx.pre {
				t.Fatal("add-member changed answers; fixture assumption broken")
			}

			var points []faultPoint
			for i := 1; i <= logAppends; i++ {
				points = append(points,
					faultPoint{"log", storage.Fault{Op: storage.FaultWrite, N: i}},
					faultPoint{"log", storage.Fault{Op: storage.FaultWrite, N: i, Torn: true}})
			}
			for i := 1; i <= logSyncs; i++ {
				points = append(points, faultPoint{"log", storage.Fault{Op: storage.FaultSync, N: i}})
			}
			for i := 1; i <= dataWrites; i++ {
				points = append(points,
					faultPoint{"data", storage.Fault{Op: storage.FaultWrite, N: i}},
					faultPoint{"data", storage.Fault{Op: storage.FaultWrite, N: i, Torn: true}})
			}
			for i := 1; i <= dataSyncs; i++ {
				points = append(points, faultPoint{"data", storage.Fault{Op: storage.FaultSync, N: i}})
			}
			if testing.Short() && len(points) > 12 {
				// Keep the boundary points and sample the interior.
				stride := len(points) / 12
				var kept []faultPoint
				for i := 0; i < len(points); i += stride {
					kept = append(kept, points[i])
				}
				kept = append(kept, points[len(points)-1])
				points = kept
			}
			t.Logf("%s: %d log appends, %d log syncs, %d data writes, %d data syncs -> %d crash points",
				kind.name, logAppends, logSyncs, dataWrites, dataSyncs, len(points))

			sawPre, sawPost := false, false
			for _, pt := range points {
				fx.restore(t)
				s, fp, ff := fx.openWithFaults(t)
				fp.Arm(storage.Fault{})
				ff.Arm(storage.Fault{})
				switch pt.target {
				case "log":
					ff.Arm(pt.fault)
				case "data":
					fp.Arm(pt.fault)
				}
				err := kind.apply(t, s)
				if err == nil {
					t.Fatalf("%s at %s: update succeeded past an armed fault", kind.name, pt)
				}
				if !errors.Is(err, storage.ErrInjected) {
					t.Fatalf("%s at %s: error does not wrap the injection: %v", kind.name, pt, err)
				}
				// The failed commit discarded state the in-memory store had
				// already built against: it must be poisoned.
				if !s.Failed() {
					t.Fatalf("%s at %s: store not poisoned after discarded batch", kind.name, pt)
				}
				if _, err := s.Query("u", "read", "//keyword"); !errors.Is(err, errStoreFailed) {
					t.Fatalf("%s at %s: query on poisoned store: %v", kind.name, pt, err)
				}
				_ = s.Close() // faulted handles; errors expected

				// Reopen "after the crash": recovery plus the consistency
				// check run inside Open.
				s2, err := Open(fx.dir, StoreOptions{PoolPages: 64})
				if err != nil {
					t.Fatalf("%s at %s: reopen: %v", kind.name, pt, err)
				}
				got := answerFingerprint(t, s2)

				// The protocol pins which state survives. A failed or torn
				// append keeps the commit record off the log unless the
				// failing append IS the checkpoint (the last of the batch),
				// so those roll back. Everything at or after the first log
				// sync rolls forward: a failed fsync is an error, but the
				// appends before it already reached the file, so recovery
				// finds a complete commit record.
				wantPost := pt.target == "data" ||
					pt.fault.Op == storage.FaultSync ||
					pt.fault.N == logAppends
				want, name := fx.pre, "pre-update"
				if wantPost {
					want, name = post, "post-update"
				}
				if got != want {
					other := "post-update"
					if wantPost {
						other = "pre-update"
					}
					if (wantPost && got == fx.pre) || (!wantPost && got == post) {
						t.Fatalf("%s at %s: recovered to the %s state, protocol demands %s", kind.name, pt, other, name)
					}
					t.Fatalf("%s at %s: recovered answers match neither pre- nor post-update state", kind.name, pt)
				}
				if wantPost {
					// A crash at the checkpoint sync left a fully
					// checkpointed batch behind — recovery redoes nothing;
					// every other roll-forward redoes exactly this batch.
					wantRedone := 1
					if pt.target == "log" && pt.fault.Op == storage.FaultSync && pt.fault.N == 2 {
						wantRedone = 0
					}
					if ri := s2.Recovery(); ri.Redone != wantRedone {
						t.Fatalf("%s at %s: redone = %d, want %d (%+v)", kind.name, pt, ri.Redone, wantRedone, ri)
					}
					sawPost = true
				} else {
					sawPre = true
				}
				if err := s2.Close(); err != nil {
					t.Fatalf("%s at %s: close after recovery: %v", kind.name, pt, err)
				}
			}
			if !sawPre || !sawPost {
				t.Fatalf("%s: matrix did not exercise both outcomes (pre=%v post=%v)", kind.name, sawPre, sawPost)
			}
			if kind.name == "set-subtree-access" && post == fx.pre {
				t.Fatal("set-subtree-access left answers unchanged; the matrix is not distinguishing states")
			}
		})
	}
}

// TestRecoveryMetaSidecar pins the codebook-staleness half of the design:
// crash after the commit record is durable but before the metadata sidecar
// and checkpoint land. Reopening must redo the batch AND rewrite
// store.json, so codes added by the update resolve after recovery.
func TestRecoveryMetaSidecar(t *testing.T) {
	fx := buildRecoveryFixture(t, 300, 512)
	fx.restore(t)
	s, fp, ff := fx.openWithFaults(t)
	fp.Arm(storage.Fault{})
	ff.Arm(storage.Fault{})
	// Crash on the first data write: the commit record (with its metadata
	// blob) is durable, nothing has been applied, store.json still holds
	// the pre-update image.
	fp.Arm(storage.Fault{Op: storage.FaultWrite, N: 1})
	target := firstNode(t, s, "/site/regions/africa/item")
	if err := s.SetAccess("staff", "read", target, false, true); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("expected injected fault, got %v", err)
	}
	_ = s.Close()

	before, err := os.ReadFile(filepath.Join(fx.dir, "store.json"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(fx.dir, StoreOptions{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ri := s2.Recovery()
	if ri.Redone != 1 || !ri.MetaApplied {
		t.Fatalf("recovery info = %+v, want one redone batch with metadata", ri)
	}
	after, err := os.ReadFile(filepath.Join(fx.dir, "store.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) == string(after) {
		t.Fatal("recovery did not rewrite the metadata sidecar")
	}
	// The revoke must be visible through the recovered store.
	if ok, err := s2.UserAccessible("u", "read", target); err != nil || ok {
		t.Fatalf("revoked subtree root accessible after recovery (ok=%v err=%v)", ok, err)
	}
}

// groupRecoveryTargets resolves three distinct keyword nodes u can
// currently see. Revoking each removes a distinct Q5 answer, so the four
// possible group prefixes (0, 1, 2 or 3 updates applied) have four
// distinct answer fingerprints and recovery outcomes are unambiguous.
func groupRecoveryTargets(t *testing.T, s *Store) [3]NodeID {
	t.Helper()
	kws, err := s.Query("u", "read", "//listitem//keyword")
	if err != nil {
		t.Fatal(err)
	}
	if len(kws) < 3 {
		t.Fatalf("fixture shows u only %d listitem keywords, need at least 3", len(kws))
	}
	return [3]NodeID{kws[0].Node, kws[1].Node, kws[2].Node}
}

// applyGroupUpdate applies the j-th (0-based) group update synchronously.
func applyGroupUpdate(t *testing.T, s *Store, targets [3]NodeID, j int) error {
	t.Helper()
	return s.SetAccess("staff", "read", targets[j], false, false)
}

// TestRecoveryGroupFlushPrefix extends the crash matrix to coalesced
// groups: three async commits are sealed while flushes are held, released
// as ONE group flush with a fault armed at every physical operation of
// that flush, and after reopening the store must answer exactly as one of
// the four group prefixes — never a torn interior batch. The sweep must
// also observe every prefix, and clean/torn variants of the same append
// must recover identically (a torn record and a missing record both keep
// the commit off the log).
func TestRecoveryGroupFlushPrefix(t *testing.T) {
	fx := buildRecoveryFixture(t, 800, 512)

	// Prefix fingerprints by sequential clean replay: prefixFP[j] is the
	// answer state after the first j updates.
	prefixFP := [4]string{fx.pre, "", "", ""}
	for j := 1; j <= 3; j++ {
		fx.restore(t)
		s, err := Open(fx.dir, StoreOptions{PoolPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		targets := groupRecoveryTargets(t, s)
		for i := 0; i < j; i++ {
			if err := applyGroupUpdate(t, s, targets, i); err != nil {
				t.Fatalf("replay update %d: %v", i, err)
			}
		}
		prefixFP[j] = answerFingerprint(t, s)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if prefixFP[a] == prefixFP[b] {
				t.Fatalf("prefixes %d and %d answer identically; the test cannot distinguish them", a, b)
			}
		}
	}

	// sealGroup seals the three updates as async commits while flushes are
	// held, so the subsequent release flushes them as a single group.
	sealGroup := func(t *testing.T, s *Store) [3]*Commit {
		t.Helper()
		targets := groupRecoveryTargets(t, s)
		s.wp.HoldFlushes()
		var cs [3]*Commit
		for j := range cs {
			c, err := s.SetAccessAsync("staff", "read", targets[j], false, false)
			if err != nil {
				t.Fatalf("seal update %d: %v", j, err)
			}
			cs[j] = c
		}
		return cs
	}

	// Probe: clean group flush, counting its physical operations.
	fx.restore(t)
	s, fp, ff := fx.openWithFaults(t)
	cs := sealGroup(t, s)
	if n := s.wp.PendingBatches(); n != 3 {
		t.Fatalf("pending batches = %d, want 3", n)
	}
	for j, c := range cs {
		select {
		case <-c.Done():
			t.Fatalf("commit %d resolved before any flush", j)
		default:
		}
	}
	fp.Arm(storage.Fault{}) // count only the flush itself
	ff.Arm(storage.Fault{})
	if err := s.wp.ReleaseFlushes(); err != nil {
		t.Fatalf("clean group flush: %v", err)
	}
	for j, c := range cs {
		if err := c.Wait(); err != nil {
			t.Fatalf("commit %d after clean flush: %v", j, err)
		}
	}
	dataWrites, dataSyncs, _ := fp.Counts()
	logAppends, logSyncs, _ := ff.Counts()
	if logSyncs != 2 || dataSyncs != 1 {
		t.Fatalf("group of 3 cost %d log syncs and %d data syncs, want 2 and 1", logSyncs, dataSyncs)
	}
	if got := answerFingerprint(t, s); got != prefixFP[3] {
		t.Fatal("grouped commits answer differently from the sequential replay")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("group flush: %d log appends, %d log syncs, %d data writes, %d data syncs",
		logAppends, logSyncs, dataWrites, dataSyncs)

	var points []faultPoint
	for i := 1; i <= logAppends; i++ {
		points = append(points,
			faultPoint{"log", storage.Fault{Op: storage.FaultWrite, N: i}},
			faultPoint{"log", storage.Fault{Op: storage.FaultWrite, N: i, Torn: true}})
	}
	for i := 1; i <= logSyncs; i++ {
		points = append(points, faultPoint{"log", storage.Fault{Op: storage.FaultSync, N: i}})
	}
	for i := 1; i <= dataWrites; i++ {
		points = append(points,
			faultPoint{"data", storage.Fault{Op: storage.FaultWrite, N: i}},
			faultPoint{"data", storage.Fault{Op: storage.FaultWrite, N: i, Torn: true}})
	}
	for i := 1; i <= dataSyncs; i++ {
		points = append(points, faultPoint{"data", storage.Fault{Op: storage.FaultSync, N: i}})
	}
	full := !testing.Short()
	if !full && len(points) > 16 {
		stride := len(points) / 16
		var kept []faultPoint
		for i := 0; i < len(points); i += stride {
			kept = append(kept, points[i])
		}
		kept = append(kept, points[len(points)-1])
		points = kept
	}

	seen := [4]bool{}
	cleanPrefix := map[int]int{} // log append N -> recovered prefix (clean variant)
	lastAppendPrefix := -1
	for _, pt := range points {
		fx.restore(t)
		s, fp, ff := fx.openWithFaults(t)
		cs := sealGroup(t, s)
		switch pt.target {
		case "log":
			ff.Arm(pt.fault)
		case "data":
			fp.Arm(pt.fault)
		}
		// The release and a leftover flusher kick may race for the group;
		// the waiters carry the authoritative outcome either way. Waiters
		// resolve nil at the group's durability point (the first log sync),
		// so faults striking after it — the checkpoint append, the second
		// log sync, anything on the data pager — leave them successful even
		// though the flush failed and poisoned the store.
		durable := pt.target == "data" ||
			(pt.fault.Op == storage.FaultSync && pt.fault.N == 2) ||
			(pt.fault.Op == storage.FaultWrite && pt.fault.N == logAppends)
		_ = s.wp.ReleaseFlushes()
		for j, c := range cs {
			err := c.Wait()
			if durable && err != nil {
				t.Fatalf("at %s: commit %d resolved with %v, want nil (group durable before fault)", pt, j, err)
			}
			if !durable && !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("at %s: commit %d resolved with %v, want injected fault", pt, j, err)
			}
		}
		if !s.Failed() {
			t.Fatalf("at %s: store not poisoned after failed group flush", pt)
		}
		if _, err := s.Query("u", "read", "//keyword"); !errors.Is(err, errStoreFailed) {
			t.Fatalf("at %s: query on poisoned store: %v", pt, err)
		}
		_ = s.Close() // faulted handles; errors expected

		s2, err := Open(fx.dir, StoreOptions{PoolPages: 64})
		if err != nil {
			t.Fatalf("at %s: reopen: %v", pt, err)
		}
		got := answerFingerprint(t, s2)
		prefix := -1
		for j, want := range prefixFP {
			if got == want {
				prefix = j
				break
			}
		}
		if prefix < 0 {
			t.Fatalf("at %s: recovered answers match NO group prefix — torn interior batch", pt)
		}
		seen[prefix] = true
		if ri := s2.Recovery(); ri.Redone != prefix &&
			!(pt.target == "log" && pt.fault.Op == storage.FaultSync && pt.fault.N == 2) {
			t.Fatalf("at %s: recovered prefix %d but redid %d batches (%+v)", pt, prefix, ri.Redone, ri)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("at %s: close after recovery: %v", pt, err)
		}

		// Everything at or past the first log sync is roll-forward: all
		// three commit records reached the file.
		if pt.target == "data" || pt.fault.Op == storage.FaultSync || pt.fault.N == logAppends {
			if prefix != 3 {
				t.Fatalf("at %s: recovered prefix %d, protocol demands the full group", pt, prefix)
			}
		}
		if pt.target == "log" && pt.fault.Op == storage.FaultWrite {
			if pt.fault.Torn {
				if want, ok := cleanPrefix[pt.fault.N]; ok && want != prefix {
					t.Fatalf("torn append #%d recovered prefix %d, clean variant recovered %d", pt.fault.N, prefix, want)
				}
			} else {
				cleanPrefix[pt.fault.N] = prefix
				if prefix < lastAppendPrefix {
					t.Fatalf("append #%d recovered prefix %d after #%d gave %d: prefixes regressed", pt.fault.N, prefix, pt.fault.N-1, lastAppendPrefix)
				}
				lastAppendPrefix = prefix
			}
		}
	}
	if full {
		for j, ok := range seen {
			if !ok {
				t.Errorf("sweep never recovered to prefix %d (saw %v)", j, seen)
			}
		}
	} else if !seen[0] || !seen[3] {
		t.Fatalf("sweep missed a boundary prefix (saw %v)", seen)
	}
}

// TestRecoveryValidationFailureDoesNotPoison checks the poison boundary:
// an update rejected before writing anything leaves the store usable.
func TestRecoveryValidationFailureDoesNotPoison(t *testing.T) {
	fx := buildRecoveryFixture(t, 200, 512)
	fx.restore(t)
	s, _, _ := fx.openWithFaults(t)
	defer s.Close()
	if err := s.SetAccess("nobody", "read", 1, false, false); err == nil {
		t.Fatal("unknown subject accepted")
	}
	if err := s.Delete(0); err == nil {
		t.Fatal("root delete accepted")
	}
	if s.Failed() {
		t.Fatal("validation failures poisoned the store")
	}
	if got := answerFingerprint(t, s); got != fx.pre {
		t.Fatal("failed validations changed answers")
	}
}
