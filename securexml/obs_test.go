package securexml

import (
	"bytes"
	"context"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dolxml/internal/xmark"
	"dolxml/internal/xmltree"
)

// xmarkXML serializes a generated XMark document back to markup so the
// builder can ingest the same tree the bench experiments query.
func xmarkXML(d *xmltree.Document) string {
	var sb strings.Builder
	var write func(n xmltree.NodeID)
	write = func(n xmltree.NodeID) {
		sb.WriteByte('<')
		sb.WriteString(d.Tag(n))
		// The parser models attributes as leading "@name" children; emit
		// them back as attributes so the round trip preserves the tree.
		c := d.FirstChild(n)
		for ; d.Valid(c) && strings.HasPrefix(d.Tag(c), "@"); c = d.NextSibling(c) {
			sb.WriteByte(' ')
			sb.WriteString(strings.TrimPrefix(d.Tag(c), "@"))
			sb.WriteString(`="`)
			xml.EscapeText(&sb, []byte(d.Value(c)))
			sb.WriteByte('"')
		}
		sb.WriteByte('>')
		if v := d.Value(n); v != "" {
			xml.EscapeText(&sb, []byte(v))
		}
		for ; d.Valid(c); c = d.NextSibling(c) {
			write(c)
		}
		sb.WriteString("</")
		sb.WriteString(d.Tag(n))
		sb.WriteByte('>')
	}
	write(d.Root())
	return sb.String()
}

// xmarkStore builds a securexml store over a small XMark instance with one
// user denied every <description> subtree, so both skip causes and
// candidate rejection have material to work on.
func xmarkStore(t *testing.T, opts StoreOptions) *Store {
	t.Helper()
	doc := xmark.Generate(xmark.Scaled(1, 8000))
	s, err := NewBuilder().
		LoadXMLString(xmarkXML(doc)).
		AddUser("u").
		Grant("u", "read", "/site").
		Revoke("u", "read", "//description").
		Seal(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// table1 is the bench workload's query set (Table 1 of the paper).
var table1 = []struct{ name, expr string }{
	{"Q1", "/site/regions/africa/item[location][name][quantity]"},
	{"Q2", "/site/categories/category[name]/description/text/bold"},
	{"Q3", "/site/categories/category/description/text/bold"},
	{"Q4", "//parlist//parlist"},
	{"Q5", "//listitem//keyword"},
	{"Q6", "//item//emph"},
}

func countKind(evs []TraceEvent, kind string) int64 {
	var n int64
	for _, e := range evs {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestQueryTraceInvariants is the acceptance matrix: for Q1–Q6 under both
// semantics, sequential and parallel, a traced run's per-page events must
// exactly account for every page pinned or skipped — trace pins equal the
// pool's Gets delta (hit flags included), skip events equal the registry's
// skip-counter deltas, and considered = read + skipped.
func TestQueryTraceInvariants(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512})
	defer s.Close()
	ctx := context.Background()

	// Warm up: first queries build the page-deny bitmaps and settle the
	// decode cache; the invariants hold regardless, but warm runs keep the
	// hit/miss split deterministic enough to diagnose on failure.
	for _, pruned := range []bool{false, true} {
		if _, err := s.QueryCtx(ctx, "u", "read", "//item", QueryOptions{Pruned: pruned}); err != nil {
			t.Fatal(err)
		}
	}

	for _, q := range table1 {
		for _, pruned := range []bool{false, true} {
			for _, par := range []int{1, 4} {
				name := fmt.Sprintf("%s/pruned=%v/par=%d", q.name, pruned, par)
				tr := NewQueryTrace()
				before := s.MetricsSnapshot()
				ms, err := s.QueryCtx(ctx, "u", "read", q.expr, QueryOptions{
					Pruned: pruned, Parallelism: par, Trace: tr,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				after := s.MetricsSnapshot()
				d := func(metric string) int64 { return after.Get(metric) - before.Get(metric) }
				evs := tr.Events()

				pins := countKind(evs, "page_pin")
				if pins != d("pool_gets") {
					t.Errorf("%s: trace pins %d != pool gets delta %d", name, pins, d("pool_gets"))
				}
				var hits int64
				for _, e := range evs {
					if e.Kind == "page_pin" && e.Hit {
						hits++
					}
				}
				if hits != d("pool_hits") || pins-hits != d("pool_misses") {
					t.Errorf("%s: trace hit/miss %d/%d != pool delta %d/%d",
						name, hits, pins-hits, d("pool_hits"), d("pool_misses"))
				}

				skipA := countKind(evs, "page_skip_access")
				skipS := countKind(evs, "page_skip_struct")
				if skipA != d("query_pages_skipped_access") || skipS != d("query_pages_skipped_struct") {
					t.Errorf("%s: trace skips %d/%d != registry delta %d/%d", name,
						skipA, skipS, d("query_pages_skipped_access"), d("query_pages_skipped_struct"))
				}
				if countKind(evs, "candidate_reject") != d("query_candidates_rejected") {
					t.Errorf("%s: trace rejects %d != registry delta %d", name,
						countKind(evs, "candidate_reject"), d("query_candidates_rejected"))
				}

				if tr.PageReads() != pins || tr.PageSkips() != skipA+skipS {
					t.Errorf("%s: accessors disagree with events: reads %d/%d skips %d/%d",
						name, tr.PageReads(), pins, tr.PageSkips(), skipA+skipS)
				}
				if tr.PagesConsidered() != tr.PageReads()+tr.PageSkips() {
					t.Errorf("%s: considered %d != read %d + skipped %d",
						name, tr.PagesConsidered(), tr.PageReads(), tr.PageSkips())
				}

				if emits := countKind(evs, "emit"); emits != int64(len(ms)) || emits != d("query_answers_total") {
					t.Errorf("%s: emits %d, answers %d, registry delta %d", name,
						emits, len(ms), d("query_answers_total"))
				}
				if d("query_total") != 1 {
					t.Errorf("%s: query_total delta = %d, want 1", name, d("query_total"))
				}
				hc := after.Histograms["query_latency_us"].Count - before.Histograms["query_latency_us"].Count
				if hc != 1 {
					t.Errorf("%s: latency histogram count delta = %d, want 1", name, hc)
				}
				if tr.Dropped() != 0 {
					t.Errorf("%s: trace dropped %d events", name, tr.Dropped())
				}
			}
		}
	}
}

// TestCursorTraceAccounting checks the streaming path: cursor pins are
// traced through every Next, and a partial drain still folds its skip and
// match counters into the registry exactly once, at Close.
func TestCursorTraceAccounting(t *testing.T) {
	s := xmarkStore(t, StoreOptions{PageSize: 512})
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Query("u", "read", "//item//emph"); err != nil {
		t.Fatal(err)
	}

	tr := NewQueryTrace()
	before := s.MetricsSnapshot()
	cur, err := s.QueryCursor(ctx, "u", "read", "//item//emph", QueryOptions{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	drained := 0
	for drained < 5 {
		_, ok, err := cur.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		drained++
	}
	sk := cur.SkipStats()
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	after := s.MetricsSnapshot()
	d := func(metric string) int64 { return after.Get(metric) - before.Get(metric) }

	if pins := countKind(tr.Events(), "page_pin"); pins != d("pool_gets") {
		t.Errorf("cursor trace pins %d != pool gets delta %d", pins, d("pool_gets"))
	}
	if d("query_answers_total") != int64(drained) {
		t.Errorf("query_answers_total delta = %d, want %d", d("query_answers_total"), drained)
	}
	if d("query_total") != 1 {
		t.Errorf("query_total delta = %d, want 1", d("query_total"))
	}
	if d("query_pages_skipped_access") != sk.AccessPages || d("query_pages_skipped_struct") != sk.StructPages {
		t.Errorf("registry skips %d/%d != cursor SkipStats %d/%d",
			d("query_pages_skipped_access"), d("query_pages_skipped_struct"),
			sk.AccessPages, sk.StructPages)
	}
	// Close already settled the counters; a second Close must not re-add.
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if again := s.MetricsSnapshot(); again.Get("query_pages_skipped_access") != after.Get("query_pages_skipped_access") {
		t.Error("second Close re-recorded skip counters")
	}
}

// TestMetricNamesValidAndUnique is the guard test: every registered name
// is lowercase_snake and unique, and the canonical families are present.
// A file-backed store must additionally register the WAL family.
func TestMetricNamesValidAndUnique(t *testing.T) {
	snake := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	check := func(t *testing.T, s *Store, want []string) {
		names := s.MetricNames()
		seen := map[string]bool{}
		for _, n := range names {
			if !snake.MatchString(n) {
				t.Errorf("metric %q is not lowercase_snake", n)
			}
			if seen[n] {
				t.Errorf("metric %q registered twice", n)
			}
			seen[n] = true
		}
		for _, w := range want {
			if !seen[w] {
				t.Errorf("canonical metric %q missing (have %v)", w, names)
			}
		}
	}

	mem := bigStore(t, StoreOptions{PageSize: 256})
	defer mem.Close()
	check(t, mem, []string{
		"pool_gets", "pool_hits", "pool_misses", "pool_pinned", "pool_capacity",
		"io_reads", "io_writes",
		"decode_cache_hits", "decode_cache_misses", "decode_cache_bytes",
		"view_checks", "view_decisions_computed", "view_bitmap_builds",
		"codebook_entries", "codebook_subjects",
		"store_nodes", "store_pages", "directory_bytes", "summary_bytes", "codebook_bytes",
		"query_total", "query_errors", "query_slow_total",
		"query_answers_total", "query_matches_total", "query_latency_us",
		"query_pages_skipped_access", "query_pages_skipped_struct",
		"query_candidates_rejected",
	})
	for _, n := range mem.MetricNames() {
		if strings.HasPrefix(n, "wal_") || n == "commit_wait_us" {
			t.Errorf("memory-backed store registered %q", n)
		}
	}

	file := bigStore(t, StoreOptions{PageSize: 256, Path: filepath.Join(t.TempDir(), "pages.dol")})
	defer file.Close()
	check(t, file, []string{
		"wal_begins", "wal_commits", "wal_fsyncs", "wal_log_appends",
		"wal_group_size", "wal_pending_batches", "commit_wait_us",
	})
}

// TestDebugHandlerEndpoints asserts the acceptance criterion that the HTTP
// surfaces expose the same counters as the in-process snapshot: the JSON
// body decodes into Metrics field-for-field, and the Prometheus text
// carries the identical values under the dolxml_ prefix.
func TestDebugHandlerEndpoints(t *testing.T) {
	s := bigStore(t, StoreOptions{PageSize: 256})
	defer s.Close()
	if _, err := s.Query("reader", "read", "//book[title]"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/vars Content-Type = %q", ct)
	}
	var got Metrics
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := s.MetricsSnapshot()
	for name, v := range want.Counters {
		if got.Counters[name] != v {
			t.Errorf("JSON counter %s = %d, want %d", name, got.Counters[name], v)
		}
	}
	if got.Histograms["query_latency_us"].Count != want.Histograms["query_latency_us"].Count {
		t.Error("JSON histogram count diverges from snapshot")
	}

	resp2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, name := range []string{"pool_gets", "query_total", "query_answers_total"} {
		line := fmt.Sprintf("dolxml_%s %d\n", name, want.Counters[name])
		if !strings.Contains(prom, line) {
			t.Errorf("Prometheus output missing %q", strings.TrimSpace(line))
		}
	}
	if !strings.Contains(prom, "# TYPE dolxml_query_latency_us histogram") {
		t.Error("Prometheus output missing the latency histogram")
	}
}

// TestSlowQueryLog checks that a threshold-armed store traces internally
// and dumps any slow query's event log to the configured writer.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	s := bigStore(t, StoreOptions{
		PageSize:           256,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       &buf,
	})
	defer s.Close()
	if _, err := s.Query("reader", "read", "//book[title]"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "//book[title]") {
		t.Fatalf("slow-query log missing header: %q", out)
	}
	if !strings.Contains(out, "page_pin") {
		t.Fatalf("slow-query log missing trace events: %q", out)
	}
	if got := s.MetricsSnapshot().Get("query_slow_total"); got == 0 {
		t.Error("query_slow_total not incremented")
	}
}

// Slow-query reports from concurrently finishing queries must land in the
// (not necessarily goroutine-safe) SlowQueryLog writer whole: one Write per
// report, serialized by the store.
func TestSlowQueryLogConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		if !bytes.HasPrefix(p, []byte("securexml: slow query")) {
			t.Errorf("partial slow-query write: %q", p[:min(len(p), 60)])
		}
		return buf.Write(p)
	})
	s := bigStore(t, StoreOptions{
		PageSize:           256,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       w,
	})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Query("reader", "read", "//book[title]"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if got := strings.Count(buf.String(), "securexml: slow query"); got != 8 {
		t.Errorf("want 8 slow-query reports, got %d", got)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
