package securexml

import (
	"io"
	"net/http"
)

// MetricsPrefix is prepended (with an underscore) to every metric name in
// the Prometheus text exposition, so dolxml stores are distinguishable on
// a shared scrape target.
const MetricsPrefix = "dolxml"

// HistogramSnapshot is the exported state of one latency histogram:
// observation count, sum, and power-of-two bucket upper bounds mapped to
// per-bucket (non-cumulative) counts.
type HistogramSnapshot struct {
	Count   int64           `json:"count"`
	Sum     int64           `json:"sum"`
	Buckets map[int64]int64 `json:"buckets,omitempty"`
}

// Metrics is a point-in-time copy of the store's whole registry. The JSON
// encoding is exactly what the /debug/vars endpoint serves, so a snapshot
// taken in-process and one scraped over HTTP are comparable field by
// field.
type Metrics struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Get returns the named counter or gauge value (0 when absent) — the
// common access path when diffing snapshots around a query.
func (m Metrics) Get(name string) int64 {
	if v, ok := m.Counters[name]; ok {
		return v
	}
	return m.Gauges[name]
}

// MetricsSnapshot copies every registered metric: buffer-pool and I/O
// traffic, WAL activity, decode-cache occupancy, access-decision cache
// work, store shape, and the query-level counters and latency histogram.
// See DESIGN.md §11 for the name table.
func (s *Store) MetricsSnapshot() Metrics {
	snap := s.reg.Snapshot()
	m := Metrics{
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: make(map[string]HistogramSnapshot, len(snap.Histograms)),
	}
	for n, h := range snap.Histograms {
		m.Histograms[n] = HistogramSnapshot{Count: h.Count, Sum: h.Sum, Buckets: h.Buckets}
	}
	return m
}

// MetricNames returns every registered metric name, sorted.
func (s *Store) MetricNames() []string { return s.reg.Names() }

// WriteMetricsJSON writes the registry as indented JSON (the /debug/vars
// payload).
func (s *Store) WriteMetricsJSON(w io.Writer) error { return s.reg.WriteJSON(w) }

// WriteMetricsPrometheus writes the registry in the Prometheus text
// exposition format under the dolxml_ prefix (the /metrics payload).
func (s *Store) WriteMetricsPrometheus(w io.Writer) error {
	return s.reg.WritePrometheus(w, MetricsPrefix)
}

// WriteMetricsPrometheusAs writes the registry in Prometheus text format
// under an explicit prefix instead of the default dolxml_. Multi-tenant
// servers use it to split one scrape target by tenant (dolxml_tenant_<id>).
func (s *Store) WriteMetricsPrometheusAs(w io.Writer, prefix string) error {
	return s.reg.WritePrometheus(w, prefix)
}

// WriteRecorderJSON writes the flight recorder's snapshot — recent query
// digests, per-fingerprint aggregates, slowest retained queries — as
// indented JSON (the /debug/queries payload).
func (s *Store) WriteRecorderJSON(w io.Writer) error { return s.rec.WriteJSON(w) }

// WriteRecorderText renders the flight recorder's snapshot as an aligned
// text report.
func (s *Store) WriteRecorderText(w io.Writer) error { return s.rec.WriteText(w) }

// DebugHandler serves the store's live metrics over HTTP:
//
//	/debug/vars     — the registry as JSON (expvar-style)
//	/metrics        — the same registry in Prometheus text format
//	/debug/queries  — the flight recorder (JSON; ?format=text for the report)
//
// Both endpoints read the same registry the in-process accessors do, so
// scraped numbers always agree with MetricsSnapshot. The handler holds no
// locks between requests and is safe to serve while queries and updates
// run; mount it wherever convenient (dolcli serve mounts it at /).
func (s *Store) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := s.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetricsPrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := s.WriteRecorderText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := s.WriteRecorderJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
