package securexml

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dolxml/internal/acl"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/storage"
)

// metaFile sits beside the page file and carries everything the pages do
// not: the codebook (held in memory at runtime, §3.2), the subject
// directory, the mode table and the NoK reopen metadata.
const metaFile = "store.json"

// pageFile is the default page file name inside a store directory.
const pageFile = "pages.db"

type persistedStore struct {
	Format   int                   `json:"format"`
	PageSize int                   `json:"page_size"`
	Modes    []string              `json:"modes"`
	Dir      acl.DirectorySnapshot `json:"directory"`
	Nok      nok.Meta              `json:"nok"`
	Codebook string                `json:"codebook"` // base64 of Codebook.MarshalBinary
}

// Save persists the store into the directory: the (already file-backed or
// copied) page file plus a JSON metadata sidecar. A store sealed without
// StoreOptions.Path is written out page by page.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	pagePath := filepath.Join(dir, pageFile)
	if s.opts.Path == "" || s.opts.Path != pagePath {
		// Copy pages into the target file.
		dst, err := storage.OpenFilePager(pagePath, s.opts.PageSize)
		if err != nil {
			return err
		}
		defer dst.Close()
		if dst.NumPages() != 0 {
			return fmt.Errorf("securexml: %s already contains %d pages", pagePath, dst.NumPages())
		}
		src := s.pool.Pager()
		buf := make([]byte, s.opts.PageSize)
		for p := 0; p < src.NumPages(); p++ {
			if err := src.ReadPage(storage.PageID(p), buf); err != nil {
				return err
			}
			id, err := dst.Allocate()
			if err != nil {
				return err
			}
			if err := dst.WritePage(id, buf); err != nil {
				return err
			}
		}
		if err := dst.Sync(); err != nil {
			return err
		}
	}
	cb, err := s.ss.Codebook().MarshalBinary()
	if err != nil {
		return err
	}
	ps := persistedStore{
		Format:   1,
		PageSize: s.opts.PageSize,
		Modes:    s.modes,
		Dir:      s.dir.Snapshot(),
		Nok:      s.ss.Store().Meta(),
		Codebook: base64.StdEncoding.EncodeToString(cb),
	}
	f, err := os.Create(filepath.Join(dir, metaFile))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	return enc.Encode(ps)
}

// Open loads a store previously written by Save.
func Open(dir string, opts StoreOptions) (*Store, error) {
	opts.defaults()
	f, err := os.Open(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ps persistedStore
	if err := json.NewDecoder(f).Decode(&ps); err != nil {
		return nil, fmt.Errorf("securexml: corrupt metadata: %w", err)
	}
	if ps.Format != 1 {
		return nil, fmt.Errorf("securexml: unsupported format %d", ps.Format)
	}
	opts.PageSize = ps.PageSize
	opts.Path = filepath.Join(dir, pageFile)

	pager, err := storage.OpenFilePager(opts.Path, opts.PageSize)
	if err != nil {
		return nil, err
	}
	pool := storage.NewBufferPool(pager, opts.PoolPages)
	st, err := nok.Open(pool, ps.Nok)
	if err != nil {
		return nil, err
	}
	if err := st.CheckConsistency(); err != nil {
		return nil, fmt.Errorf("securexml: store failed consistency check: %w", err)
	}
	applyDecodeCacheBudget(st, opts.DecodeCacheBytes)
	cbBytes, err := base64.StdEncoding.DecodeString(ps.Codebook)
	if err != nil {
		return nil, fmt.Errorf("securexml: corrupt codebook: %w", err)
	}
	cb := dol.NewCodebook(0)
	if err := cb.UnmarshalBinary(cbBytes); err != nil {
		return nil, err
	}
	d, err := acl.DirectoryFromSnapshot(ps.Dir)
	if err != nil {
		return nil, err
	}
	if want := d.Len() * len(ps.Modes); cb.NumSubjects() != want {
		return nil, fmt.Errorf("securexml: codebook covers %d columns, directory needs %d", cb.NumSubjects(), want)
	}
	modeIdx := make(map[string]int, len(ps.Modes))
	for i, m := range ps.Modes {
		modeIdx[m] = i
	}
	s := &Store{
		opts:     opts,
		pool:     pool,
		ss:       dol.OpenSecureStore(st, cb),
		dir:      d,
		modes:    ps.Modes,
		modeIdx:  modeIdx,
		idxDirty: true,
	}
	if err := s.reindex(); err != nil {
		return nil, err
	}
	return s, nil
}
