package securexml

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dolxml/internal/acl"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/storage"
)

// metaFile sits beside the page file and carries everything the pages do
// not: the codebook (held in memory at runtime, §3.2), the subject
// directory, the mode table and the NoK reopen metadata.
const metaFile = "store.json"

// pageFile is the default page file name inside a store directory.
const pageFile = "pages.db"

// walSuffix names the write-ahead log beside a page file.
const walSuffix = ".wal"

type persistedStore struct {
	Format   int                   `json:"format"`
	PageSize int                   `json:"page_size"`
	Modes    []string              `json:"modes"`
	Dir      acl.DirectorySnapshot `json:"directory"`
	Nok      nok.Meta              `json:"nok"`
	Codebook string                `json:"codebook"` // base64 of Codebook.MarshalBinary
}

// metaSink receives the metadata blob of every committed WAL batch — both
// live commits and batches redone during recovery — and rewrites the
// store.json sidecar atomically. Until a persisted directory is known
// (a store sealed but never saved) the blobs are dropped: there is no
// sidecar on disk whose staleness could matter.
type metaSink struct {
	mu  sync.Mutex
	dir string
}

func (m *metaSink) set(dir string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dir = dir
}

func (m *metaSink) deliver(meta []byte) error {
	m.mu.Lock()
	dir := m.dir
	m.mu.Unlock()
	if dir == "" {
		return nil
	}
	return writeFileAtomic(filepath.Join(dir, metaFile), meta)
}

// writeFileAtomic replaces path with data via a same-directory temp file
// and rename, fsyncing the file before the rename and the directory after,
// so a crash leaves either the old sidecar or the new one — never a torn
// or missing file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once renamed away
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// The sidecar image is assembled from cached fragments: the expensive
// pieces (directory, tag table, value index — thousands of JSON entries)
// change rarely, while the page-ID list changes on EVERY accessibility
// update now that rewrites shadow-page into fresh frames. marshalMeta
// therefore re-encodes only structure_pages (small: one int per page) per
// commit and splices it between the cached fragments; re-encoding the whole
// sidecar put milliseconds of JSON work inside the sealing critical section
// and capped group-commit throughput.
//
// metaHeadState fingerprints the NoK shape the cached nok fragments were
// built from, as a backstop for the explicit invalidations: structural
// updates call invalidateMetaHead, and node/tag/value counts cannot change
// without one.
type metaHeadState struct {
	numNodes  int
	numTags   int
	numValues int
}

func (s *Store) metaHeadState() metaHeadState {
	st := s.ss.Store()
	hs := metaHeadState{
		numNodes: st.NumNodes(),
		numTags:  st.NumTags(),
	}
	if vs := st.Values(); vs != nil {
		hs.numValues = vs.NumValues()
	}
	return hs
}

// invalidateMetaHead drops every cached sidecar fragment. Updates that
// mutate the directory or restructure NoK state (insert/delete/move,
// vacuum, subject changes) call it under the write lock before sealing;
// pure accessibility updates need not — their only sidecar change is the
// always-fresh page-ID list.
func (s *Store) invalidateMetaHead() {
	s.metaPre = nil
	s.metaNokHead = nil
	s.metaVals = nil
}

// marshalMeta serializes the store's current metadata sidecar image — the
// blob Save writes to store.json and update commits journal in the WAL.
// The output is byte-assembled from the cached fragments in
// persistedStore's field order; readMeta decodes it like any other JSON.
// Caller holds s.mu.
func (s *Store) marshalMeta() ([]byte, error) {
	st := s.ss.Store()
	if s.metaPre == nil {
		pre, err := json.Marshal(struct {
			Format   int                   `json:"format"`
			PageSize int                   `json:"page_size"`
			Modes    []string              `json:"modes"`
			Dir      acl.DirectorySnapshot `json:"directory"`
		}{1, s.opts.PageSize, s.modes, s.dir.Snapshot()})
		if err != nil {
			return nil, err
		}
		s.metaPre = pre
	}
	hs := s.metaHeadState()
	if s.metaNokHead == nil || hs != s.metaFP {
		m := st.Meta()
		head, err := json.Marshal(struct {
			NumNodes int      `json:"num_nodes"`
			Tags     []string `json:"tags"`
		}{m.NumNodes, m.Tags})
		if err != nil {
			return nil, err
		}
		s.metaNokHead = head
		s.metaVals = nil
		if len(m.ValueRefs) > 0 {
			vals, err := json.Marshal(m.ValueRefs)
			if err != nil {
				return nil, err
			}
			s.metaVals = vals
		}
		s.metaFP = hs
	}
	pages, err := json.Marshal(st.StructurePages())
	if err != nil {
		return nil, err
	}
	// The path summary is re-encoded per commit like the page-ID list: ACL
	// rewrites can degrade class code modes and structural updates change
	// the class sets, and the summary is small (one node per distinct
	// label path plus per-block bitsets).
	var psum []byte
	if pm := st.PathSummaryMeta(); pm != nil {
		if psum, err = json.Marshal(pm); err != nil {
			return nil, err
		}
	}
	cb, err := s.ss.Codebook().MarshalBinary()
	if err != nil {
		return nil, err
	}
	b64 := base64.StdEncoding.EncodeToString(cb)
	var buf bytes.Buffer
	buf.Grow(len(s.metaPre) + len(s.metaNokHead) + len(pages) + len(s.metaVals) + len(b64) + 64)
	buf.Write(s.metaPre[:len(s.metaPre)-1]) // strip the closing '}'
	buf.WriteString(`,"nok":`)
	buf.Write(s.metaNokHead[:len(s.metaNokHead)-1])
	buf.WriteString(`,"structure_pages":`)
	buf.Write(pages)
	if psum != nil {
		buf.WriteString(`,"path_summary":`)
		buf.Write(psum)
	}
	if s.metaVals != nil {
		buf.WriteString(`,"value_refs":`)
		buf.Write(s.metaVals)
	}
	buf.WriteString(`},"codebook":"`)
	buf.WriteString(b64)
	buf.WriteString(`"}`)
	return buf.Bytes(), nil
}

// Save persists the store into the directory: the (already file-backed or
// copied) page file plus a JSON metadata sidecar. A store sealed without
// StoreOptions.Path is written out page by page. The sidecar lands via an
// atomic temp-file-and-rename, and both it and the pages are fsynced, so
// an interrupted Save never leaves a half-written store behind.
// Save also acts as a durability barrier: the pager Sync (or the page
// copy) below drains any sealed-but-unflushed async commits first.
func (s *Store) Save(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failedNow() {
		return errStoreFailed
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	pagePath := filepath.Join(dir, pageFile)
	if s.opts.Path == "" || s.opts.Path != pagePath {
		// Copy pages into the target file.
		dst, err := storage.OpenFilePager(pagePath, s.opts.PageSize)
		if err != nil {
			return err
		}
		defer dst.Close()
		if dst.NumPages() != 0 {
			return fmt.Errorf("securexml: %s already contains %d pages", pagePath, dst.NumPages())
		}
		src := s.pool.Pager()
		buf := make([]byte, s.opts.PageSize)
		for p := 0; p < src.NumPages(); p++ {
			if err := src.ReadPage(storage.PageID(p), buf); err != nil {
				return err
			}
			id, err := dst.Allocate()
			if err != nil {
				return err
			}
			if err := dst.WritePage(id, buf); err != nil {
				return err
			}
		}
		if err := dst.Sync(); err != nil {
			return err
		}
	} else if err := s.pool.Pager().Sync(); err != nil {
		return err
	}
	meta, err := s.marshalMeta()
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, metaFile), meta); err != nil {
		return err
	}
	if s.opts.Path == pagePath {
		// The live page file sits in the saved directory: from now on
		// every committed update keeps the sidecar current through the
		// WAL's metadata sink.
		s.sink.set(dir)
	}
	return nil
}

// readMeta loads and validates the store.json sidecar.
func readMeta(dir string) (persistedStore, error) {
	var ps persistedStore
	b, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return ps, err
	}
	if err := json.Unmarshal(b, &ps); err != nil {
		return ps, fmt.Errorf("securexml: corrupt metadata: %w", err)
	}
	if ps.Format != 1 {
		return ps, fmt.Errorf("securexml: unsupported format %d", ps.Format)
	}
	return ps, nil
}

// Open loads a store previously written by Save, first running WAL crash
// recovery: update batches whose commit record reached the log but whose
// pages (or sidecar) did not all reach the store are redone, and torn or
// uncommitted batches are discarded, restoring the pre-update state. The
// page summaries, deny bitmaps, decode cache and tag indexes are derived
// structures rebuilt here from the recovered pages, so no stale cached
// view of a rolled-forward or rolled-back page can survive a reopen.
func Open(dir string, opts StoreOptions) (*Store, error) {
	opts.defaults()
	ps, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	opts.PageSize = ps.PageSize
	opts.Path = filepath.Join(dir, pageFile)

	var pager storage.Pager
	fp, err := storage.OpenFilePager(opts.Path, opts.PageSize)
	if err != nil {
		return nil, err
	}
	pager = fp
	if opts.WrapPager != nil {
		pager = opts.WrapPager(pager)
	}
	sink := &metaSink{dir: dir}
	var info storage.RecoveryInfo
	var wal *storage.WALPager
	if !opts.DisableWAL {
		osf, err := storage.OpenOSFile(opts.Path + walSuffix)
		if err != nil {
			pager.Close()
			return nil, err
		}
		var log storage.File = osf
		if opts.WrapWALFile != nil {
			log = opts.WrapWALFile(log)
		}
		wp, ri, err := storage.OpenWALPager(pager, log, sink.deliver)
		if err != nil {
			log.Close()
			pager.Close()
			return nil, fmt.Errorf("securexml: wal recovery: %w", err)
		}
		pager, info, wal = wp, ri, wp
		if info.MetaApplied {
			// Recovery redid a batch whose sidecar had not landed;
			// the sink just rewrote store.json — reload it.
			if ps, err = readMeta(dir); err != nil {
				pager.Close()
				return nil, err
			}
			if ps.PageSize != opts.PageSize {
				pager.Close()
				return nil, fmt.Errorf("securexml: recovered metadata page size %d, had %d", ps.PageSize, opts.PageSize)
			}
		}
	}
	pool := storage.NewBufferPool(pager, opts.PoolPages)
	st, err := nok.Open(pool, ps.Nok)
	if err != nil {
		return nil, err
	}
	if err := st.CheckConsistency(); err != nil {
		return nil, fmt.Errorf("securexml: store failed consistency check: %w", err)
	}
	applyDecodeCacheBudget(st, opts.DecodeCacheBytes)
	cbBytes, err := base64.StdEncoding.DecodeString(ps.Codebook)
	if err != nil {
		return nil, fmt.Errorf("securexml: corrupt codebook: %w", err)
	}
	cb := dol.NewCodebook(0)
	if err := cb.UnmarshalBinary(cbBytes); err != nil {
		return nil, err
	}
	d, err := acl.DirectoryFromSnapshot(ps.Dir)
	if err != nil {
		return nil, err
	}
	if want := d.Len() * len(ps.Modes); cb.NumSubjects() != want {
		return nil, fmt.Errorf("securexml: codebook covers %d columns, directory needs %d", cb.NumSubjects(), want)
	}
	modeIdx := make(map[string]int, len(ps.Modes))
	for i, m := range ps.Modes {
		modeIdx[m] = i
	}
	s := &Store{
		opts:       opts,
		pool:       pool,
		ss:         dol.OpenSecureStore(st, cb),
		dir:        d,
		modes:      ps.Modes,
		modeIdx:    modeIdx,
		sink:       sink,
		recovery:   info,
		wp:         wal,
		maskHits:   obs.NewCounter(),
		maskMisses: obs.NewCounter(),
	}
	s.initSnapshot()
	if err := s.initObs(); err != nil {
		return nil, err
	}
	// Build the initial indexes eagerly so Open (not the first query)
	// reports a build failure, matching the historical reindex-at-open.
	if sn := s.cur.Load(); sn != nil {
		if err := sn.idx.ensure(sn.st); err != nil {
			return nil, err
		}
	}
	return s, nil
}
