package securexml

import (
	"io"

	"dolxml/internal/obs"
)

// QueryTrace records one query's timestamped event log: spans (parse,
// skip-mask compile, pipeline open, join open), one event per page pinned
// or skipped (with the evidence that justified it), candidate rejections,
// join probes, merge chunks and emitted answers. Attach it via
// QueryOptions.Trace; a single trace may be reused across queries to
// accumulate events, but is normally per-query. The per-page events
// exactly account for every buffer-pool pin the query performed:
// PageReads() equals the pool's Gets delta and PageReads()+PageSkips()
// equals PagesConsidered().
type QueryTrace struct {
	t *obs.Trace
}

// NewQueryTrace returns an empty trace starting now.
func NewQueryTrace() *QueryTrace { return &QueryTrace{t: obs.NewTrace()} }

// NewCountingQueryTrace returns a trace that keeps only atomic counters —
// page pins, pool hits, skips by cause, emits — and retains no events.
// It is what the store attaches to untraced queries for the flight
// recorder; attach one explicitly to observe a query's page accounting
// with event-log cost excluded.
func NewCountingQueryTrace() *QueryTrace { return &QueryTrace{t: obs.NewCountingTrace()} }

// inner returns the wrapped trace (nil-safe).
func (qt *QueryTrace) inner() *obs.Trace {
	if qt == nil {
		return nil
	}
	return qt.t
}

// PageReads counts page-pin events — one per buffer-pool page acquisition
// the traced query performed.
func (qt *QueryTrace) PageReads() int64 { return qt.inner().PageReads() }

// PageHits counts the page pins served from the buffer pool's resident
// set — the hit share of PageReads.
func (qt *QueryTrace) PageHits() int64 { return qt.inner().PageHits() }

// PageSkips counts pages the query skipped without I/O, both causes.
func (qt *QueryTrace) PageSkips() int64 { return qt.inner().PageSkips() }

// Emits counts answers emitted by the traced query's pipeline.
func (qt *QueryTrace) Emits() int64 { return qt.inner().Emits() }

// PagesConsidered counts every page decision: reads plus skips.
func (qt *QueryTrace) PagesConsidered() int64 { return qt.inner().PagesConsidered() }

// Dropped returns how many events were discarded past the trace's event
// limit; 0 means the trace is complete.
func (qt *QueryTrace) Dropped() int64 { return qt.inner().Dropped() }

// WriteTo dumps the trace, one event per line with microsecond offsets.
func (qt *QueryTrace) WriteTo(w io.Writer) (int64, error) { return qt.inner().WriteTo(w) }

// String renders the trace via WriteTo.
func (qt *QueryTrace) String() string { return qt.inner().String() }

// TraceEvent is one entry of a query trace.
type TraceEvent struct {
	// AtMicros is the offset from the trace's start, in microseconds.
	AtMicros int64 `json:"at_us"`
	// Kind classifies the event: parse, compile_skip_mask, open_pipeline,
	// page_pin, page_decode, page_skip_access, page_skip_struct,
	// candidate_reject, join_open, join_probe, merge_chunk, emit, done.
	Kind string `json:"kind"`
	// Op names the plan operator the event belongs to (scan0, join1,
	// filter, dedup, limit, output); empty for query-level events.
	Op string `json:"op,omitempty"`
	// Page is the page touched or skipped (-1 when not page-related).
	Page int64 `json:"page,omitempty"`
	// Node is the data node involved (-1 when not node-related).
	Node int64 `json:"node,omitempty"`
	// Hit marks a buffer-pool hit on page_pin events.
	Hit bool `json:"hit,omitempty"`
	// DurMicros is the span duration for span events, in microseconds.
	DurMicros int64 `json:"dur_us,omitempty"`
	// N carries an event-specific count (join pairs, merged tuples).
	N int64 `json:"n,omitempty"`
}

// Events returns a copy of the recorded events in order.
func (qt *QueryTrace) Events() []TraceEvent {
	evs := qt.inner().Events()
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		out[i] = TraceEvent{
			AtMicros:  e.At.Microseconds(),
			Kind:      string(e.Kind),
			Op:        e.Op,
			Page:      e.Page,
			Node:      e.Node,
			Hit:       e.Hit,
			DurMicros: e.Dur.Microseconds(),
			N:         e.N,
		}
	}
	return out
}
