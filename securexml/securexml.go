// Package securexml is the public facade of the DOL library: it ties the
// substrates together into a secure XML store with the workflow of the
// paper —
//
//  1. load an XML document,
//  2. declare subjects (users, groups, memberships) and action modes,
//  3. write rule-based access control policies over XPath targets with
//     hierarchical propagation (Most-Specific-Override),
//  4. Seal: materialize the net accessibility function and encode it as a
//     Document Ordered Labeling physically embedded in block-oriented NoK
//     storage, and
//  5. run secure twig queries whose access checks ride along with the
//     structure pages (no additional I/O), under either of the paper's two
//     secure-evaluation semantics.
//
// Sealed stores remain updatable: node/subtree accessibility changes,
// subject addition and removal, and structural inserts, deletes and moves
// of subtrees — all with the paper's update-locality guarantees.
package securexml

import (
	"fmt"
	"io"
	"strings"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/query"
	"dolxml/internal/xmltree"
)

// NodeID identifies a node by its document-order position (the root is 0).
type NodeID int32

// InvalidNode is the null node reference; it also selects "insert as first
// child" in InsertXML and Move.
const InvalidNode NodeID = -1

// Effect is the sign of a policy rule.
type Effect int

// Rule effects.
const (
	Deny Effect = iota
	Permit
)

// Builder accumulates the document, the subject directory and the policy
// before the store is sealed.
type Builder struct {
	doc       *xmltree.Document
	dir       *acl.Directory
	modes     []string
	modeIdx   map[string]int
	rules     []ruleSpec
	defaultOn bool
	err       error
}

type ruleSpec struct {
	subject string
	mode    string
	xpath   string
	effect  Effect
	cascade bool
}

// NewBuilder returns an empty builder with the conventional "read" and
// "write" action modes pre-registered and a closed-world (deny by default)
// policy.
func NewBuilder() *Builder {
	b := &Builder{
		dir:     acl.NewDirectory(),
		modeIdx: make(map[string]int),
	}
	b.AddMode("read")
	b.AddMode("write")
	return b
}

// fail records the first error; subsequent calls keep it.
func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// LoadXML parses the document to secure.
func (b *Builder) LoadXML(r io.Reader) *Builder {
	doc, err := xmltree.Parse(r)
	if err != nil {
		b.fail(err)
		return b
	}
	b.doc = doc
	return b
}

// LoadXMLString is LoadXML over a string.
func (b *Builder) LoadXMLString(s string) *Builder {
	return b.LoadXML(strings.NewReader(s))
}

// AddMode registers an action mode name (idempotent) and returns b.
func (b *Builder) AddMode(name string) *Builder {
	if _, ok := b.modeIdx[name]; !ok {
		b.modeIdx[name] = len(b.modes)
		b.modes = append(b.modes, name)
	}
	return b
}

// AddUser registers a user subject.
func (b *Builder) AddUser(name string) *Builder {
	if _, err := b.dir.AddUser(name); err != nil {
		b.fail(err)
	}
	return b
}

// AddGroup registers a group subject.
func (b *Builder) AddGroup(name string) *Builder {
	if _, err := b.dir.AddGroup(name); err != nil {
		b.fail(err)
	}
	return b
}

// AddMember records that member (a user or group) belongs to group.
func (b *Builder) AddMember(group, member string) *Builder {
	g, ok := b.dir.Lookup(group)
	if !ok {
		b.fail(fmt.Errorf("securexml: unknown group %q", group))
		return b
	}
	m, ok := b.dir.Lookup(member)
	if !ok {
		b.fail(fmt.Errorf("securexml: unknown subject %q", member))
		return b
	}
	if err := b.dir.AddMember(g, m); err != nil {
		b.fail(err)
	}
	return b
}

// Grant adds a cascading permit rule: subject gets mode on every node
// matched by the XPath expression and, by propagation, on their subtrees
// until overridden by a more specific rule.
func (b *Builder) Grant(subject, mode, xpath string) *Builder {
	b.rules = append(b.rules, ruleSpec{subject, mode, xpath, Permit, true})
	return b
}

// Revoke adds a cascading deny rule.
func (b *Builder) Revoke(subject, mode, xpath string) *Builder {
	b.rules = append(b.rules, ruleSpec{subject, mode, xpath, Deny, true})
	return b
}

// GrantLocal and RevokeLocal add non-cascading rules affecting only the
// matched nodes themselves.
func (b *Builder) GrantLocal(subject, mode, xpath string) *Builder {
	b.rules = append(b.rules, ruleSpec{subject, mode, xpath, Permit, false})
	return b
}

// RevokeLocal adds a non-cascading deny rule.
func (b *Builder) RevokeLocal(subject, mode, xpath string) *Builder {
	b.rules = append(b.rules, ruleSpec{subject, mode, xpath, Deny, false})
	return b
}

// PermitByDefault switches the policy to an open world: subjects without
// applicable rules can access everything.
func (b *Builder) PermitByDefault() *Builder {
	b.defaultOn = true
	return b
}

// buildMatrix materializes the combined (subject × mode) accessibility
// matrix. Bit layout: column subject*numModes + mode, so post-seal subject
// additions append columns.
func (b *Builder) buildMatrix() (*acl.Matrix, error) {
	numSubjects := b.dir.Len()
	numModes := len(b.modes)
	combined := acl.NewMatrix(b.doc.Len(), numSubjects*numModes)

	// Validate every rule before materializing any mode.
	for ri, r := range b.rules {
		if _, ok := b.dir.Lookup(r.subject); !ok {
			return nil, fmt.Errorf("securexml: rule %d: unknown subject %q", ri, r.subject)
		}
		if _, ok := b.modeIdx[r.mode]; !ok {
			return nil, fmt.Errorf("securexml: rule %d: unknown mode %q", ri, r.mode)
		}
		if _, err := query.Parse(r.xpath); err != nil {
			return nil, fmt.Errorf("securexml: rule %d: %w", ri, err)
		}
	}

	// Group rule specs per mode into acl policies over plain subjects.
	for mi, modeName := range b.modes {
		p := acl.NewPolicy()
		p.Conflicts = acl.LastRuleWins
		if b.defaultOn {
			p.DefaultEffect = acl.Permit
		}
		for ri, r := range b.rules {
			if r.mode != modeName {
				continue
			}
			s, ok := b.dir.Lookup(r.subject)
			if !ok {
				return nil, fmt.Errorf("securexml: rule %d: unknown subject %q", ri, r.subject)
			}
			if _, ok := b.modeIdx[r.mode]; !ok {
				return nil, fmt.Errorf("securexml: rule %d: unknown mode %q", ri, r.mode)
			}
			pt, err := query.Parse(r.xpath)
			if err != nil {
				return nil, fmt.Errorf("securexml: rule %d: %w", ri, err)
			}
			for _, target := range query.MatchDocument(b.doc, pt) {
				p.Add(acl.Rule{
					Subject: s,
					Mode:    acl.ModeRead, // single-mode policy per loop
					Target:  target,
					Effect:  acl.Effect(r.effect),
					Cascade: r.cascade,
				})
			}
		}
		m, err := p.Materialize(b.doc, acl.ModeRead, numSubjects)
		if err != nil {
			return nil, err
		}
		for n := 0; n < b.doc.Len(); n++ {
			for s := 0; s < numSubjects; s++ {
				if m.Accessible(xmltree.NodeID(n), acl.SubjectID(s)) {
					combined.Set(xmltree.NodeID(n), acl.SubjectID(s*numModes+mi), true)
				}
			}
		}
	}
	return combined, nil
}

// effectiveBits expands a user's effective subjects into combined-matrix
// bit positions for one mode.
func effectiveBits(dir *acl.Directory, numModes, mode int, user acl.SubjectID) *bitset.Bitset {
	eff := dir.EffectiveSubjects(user)
	out := bitset.New(dir.Len() * numModes)
	for _, s := range eff.Indices() {
		out.Set(s*numModes + mode)
	}
	return out
}
