package securexml

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dolxml/internal/query"
)

// Plan is the structured form of one query's compiled evaluation plan:
// the pattern tree annotated with skip-mask and path-routing state, the
// path-summary embedding verdict, and the operator pipeline evaluation
// would build — computed by Store.Explain with zero execution. It
// marshals to JSON (the /explain payload) and renders as an indented
// text tree.
type Plan struct {
	p *query.Plan
}

// Unsatisfiable reports the path-summary short-circuit: the pattern has
// no embedding in the document's path summary, so evaluation returns
// empty without pinning a single page.
func (p *Plan) Unsatisfiable() bool { return p.p.Unsatisfiable }

// EmptyAccess reports the access-side short-circuit: every path class a
// pattern node can bind is uniformly denied to the subject.
func (p *Plan) EmptyAccess() bool { return p.p.EmptyAccess }

// Operators returns the number of pipeline operators the plan builds (0
// for a short-circuited plan).
func (p *Plan) Operators() int { return len(p.p.Operators) }

// MarshalJSON exposes the full plan structure.
func (p *Plan) MarshalJSON() ([]byte, error) { return json.Marshal(p.p) }

// WriteJSON writes the plan as indented JSON.
func (p *Plan) WriteJSON(w io.Writer) error { return p.p.WriteJSON(w) }

// WriteText renders the plan as an indented text tree.
func (p *Plan) WriteText(w io.Writer) error { return p.p.WriteText(w) }

// String renders the plan via WriteText.
func (p *Plan) String() string {
	var sb strings.Builder
	p.WriteText(&sb)
	return sb.String()
}

// Explain compiles the query exactly as QueryCtx would — same snapshot
// acquisition, subject view, skip-mask and path-routing compilation, and
// operator selection — and returns the plan without executing anything.
// An unsatisfiable or uniformly denied query reports its short-circuit
// without pinning any store page.
func (s *Store) Explain(ctx context.Context, user, mode, xpath string, opts QueryOptions) (*Plan, error) {
	qo := query.Options{
		Limit:              opts.Limit,
		Parallelism:        opts.Parallelism,
		DisableSummarySkip: opts.DisableSummarySkip,
		DisablePathSummary: opts.DisablePathSummary,
	}
	pt, err := query.Parse(xpath)
	if err != nil {
		return nil, err
	}
	r, err := s.acquireFor(opts)
	if err != nil {
		return nil, err
	}
	defer s.release(r)
	sn := r.sn
	if !opts.Unrestricted {
		view, err := s.viewAt(sn, user, mode)
		if err != nil {
			return nil, err
		}
		qo.View = view
		if opts.Pruned {
			qo.Semantics = query.SemanticsPrunedSubtree
		}
	}
	if err := sn.idx.ensure(sn.st); err != nil {
		return nil, err
	}
	p, err := evaluatorAt(sn).Explain(ctx, pt, qo)
	if err != nil {
		return nil, err
	}
	return &Plan{p: p}, nil
}

// QueryAnalysis receives the outcome of an ANALYZE run: set
// QueryOptions.Analyze to a zero QueryAnalysis and QueryCtx fills it with
// the plan plus per-operator attribution folded from a forced full trace
// — pages pinned, pool hits, skips by cause, candidate rejections, join
// probes and span time per plan operator, with the per-operator page
// counts summing exactly to the buffer pool's pin delta for the query.
type QueryAnalysis struct {
	an *query.Analysis
}

// Ready reports whether the analysis has been filled by a query.
func (qa *QueryAnalysis) Ready() bool { return qa != nil && qa.an != nil }

// Plan returns the analyzed query's plan (nil before the query ran).
func (qa *QueryAnalysis) Plan() *Plan {
	if !qa.Ready() {
		return nil
	}
	return &Plan{p: qa.an.Plan}
}

// TotalPages returns the total pages pinned across every attribution
// bucket — the left-hand side of the reconciliation invariant.
func (qa *QueryAnalysis) TotalPages() int64 {
	if !qa.Ready() {
		return 0
	}
	return qa.an.Totals().Pins
}

// MarshalJSON exposes the full analysis structure.
func (qa *QueryAnalysis) MarshalJSON() ([]byte, error) {
	if !qa.Ready() {
		return []byte("null"), nil
	}
	return json.Marshal(qa.an)
}

// WriteJSON writes the analysis as indented JSON.
func (qa *QueryAnalysis) WriteJSON(w io.Writer) error {
	if !qa.Ready() {
		return fmt.Errorf("securexml: analysis not filled; run the query first")
	}
	return qa.an.WriteJSON(w)
}

// WriteText renders the plan followed by the per-operator attribution
// table.
func (qa *QueryAnalysis) WriteText(w io.Writer) error {
	if !qa.Ready() {
		return fmt.Errorf("securexml: analysis not filled; run the query first")
	}
	return qa.an.WriteText(w)
}

// fingerprintFor normalizes one parsed query to its flight-recorder
// fingerprint: the canonical pattern render plus the semantics and the
// options that change the plan. Two textually different XPath strings
// with the same pattern share a fingerprint.
func fingerprintFor(pt *query.PatternTree, opts QueryOptions) string {
	var b strings.Builder
	b.WriteString(pt.String())
	switch {
	case opts.Unrestricted:
		b.WriteString("|unrestricted")
	case opts.Pruned:
		b.WriteString("|pruned")
	default:
		b.WriteString("|bindings")
	}
	if opts.Limit > 0 {
		fmt.Fprintf(&b, "|limit=%d", opts.Limit)
	}
	if opts.DisableSummarySkip {
		b.WriteString("|nosummary")
	}
	if opts.DisablePathSummary {
		b.WriteString("|nopath")
	}
	return b.String()
}

// QueryFingerprint returns the normalized fingerprint the flight
// recorder keys the query under — useful for correlating access-log
// lines with /debug/queries aggregates.
func QueryFingerprint(xpath string, opts QueryOptions) (string, error) {
	pt, err := query.Parse(xpath)
	if err != nil {
		return "", err
	}
	return fingerprintFor(pt, opts), nil
}
