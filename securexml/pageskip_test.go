package securexml

import (
	"context"
	"strings"
	"testing"
)

// bigStore builds a document wide enough to span many pages at a small page
// size, with a user who can read everything except <secret> subtrees. A long
// run of <pad/> leaves sits between two book clusters so whole pages exist
// that hold no book or title at all — exactly what the structural summaries
// can prove skippable for /lib/book scans.
func bigStore(t *testing.T, opts StoreOptions) *Store {
	t.Helper()
	books := func(sb *strings.Builder, n int) {
		for i := 0; i < n; i++ {
			sb.WriteString("<book><title>t</title><secret>s</secret></book>")
		}
	}
	var sb strings.Builder
	sb.WriteString("<lib>")
	books(&sb, 250)
	for i := 0; i < 2000; i++ {
		sb.WriteString("<pad/>")
	}
	books(&sb, 250)
	sb.WriteString("</lib>")
	s, err := NewBuilder().
		LoadXMLString(sb.String()).
		AddUser("reader").
		Grant("reader", "read", "/lib").
		Revoke("reader", "read", "//secret").
		Seal(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDecodeCacheBytesOption(t *testing.T) {
	// Default budget: the cache is live and collects entries under load.
	s := bigStore(t, StoreOptions{PageSize: 256})
	if _, err := s.Query("reader", "read", "//book[title]"); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DecodeCache.Budget <= 0 || st.DecodeCache.Entries == 0 {
		t.Fatalf("default decode cache inactive: %+v", st.DecodeCache)
	}
	if st.SummaryBytes <= 0 {
		t.Fatalf("SummaryBytes = %d, want > 0", st.SummaryBytes)
	}
	s.Close()

	// Explicit budget is honored.
	s = bigStore(t, StoreOptions{PageSize: 256, DecodeCacheBytes: 1 << 14})
	if cs := s.DecodeCacheStats(); cs.Budget != 1<<14 {
		t.Fatalf("budget = %d, want %d", cs.Budget, 1<<14)
	}
	s.Close()

	// Negative disables caching entirely.
	s = bigStore(t, StoreOptions{PageSize: 256, DecodeCacheBytes: -1})
	defer s.Close()
	if _, err := s.Query("reader", "read", "//book[title]"); err != nil {
		t.Fatal(err)
	}
	cs := s.DecodeCacheStats()
	if cs.Budget != 0 || cs.Entries != 0 || cs.Bytes != 0 {
		t.Fatalf("disabled decode cache holds state: %+v", cs)
	}
}

func TestCursorSkipStatsAndDisable(t *testing.T) {
	s := bigStore(t, StoreOptions{PageSize: 256})
	defer s.Close()
	ctx := context.Background()

	drain := func(opts QueryOptions) ([]Match, SkipStats) {
		cur, err := s.QueryCursor(ctx, "reader", "read", "/lib/book[title]", opts)
		if err != nil {
			t.Fatal(err)
		}
		var ms []Match
		for {
			m, ok, err := cur.Next(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			ms = append(ms, m)
		}
		sk := cur.SkipStats()
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		return ms, sk
	}

	on, skOn := drain(QueryOptions{})
	// Path routing off too, so the off arm isolates the per-page summaries
	// (path-dead bits land in StructPages as well).
	off, skOff := drain(QueryOptions{DisableSummarySkip: true, DisablePathSummary: true})
	if len(on) != 500 || len(off) != 500 {
		t.Fatalf("books: %d with summaries, %d without, want 500", len(on), len(off))
	}
	for i := range on {
		if on[i].Node != off[i].Node {
			t.Fatalf("answer %d differs: %d vs %d", i, on[i].Node, off[i].Node)
		}
	}
	if skOff.StructPages != 0 {
		t.Fatalf("disabled run recorded %d structural skips", skOff.StructPages)
	}
	// The /lib/book child scan crosses the <pad/> run: those pages hold no
	// book or title, so the summaries must prove them skippable.
	if skOn.StructPages == 0 {
		t.Fatal("summaries enabled but no structural skips recorded")
	}
}

// The DisableSummarySkip option must not change answers through the batch
// path either.
func TestQueryCtxDisableSummarySkip(t *testing.T) {
	s := bigStore(t, StoreOptions{PageSize: 256})
	defer s.Close()
	ctx := context.Background()
	on, err := s.QueryCtx(ctx, "reader", "read", "//book[title]", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := s.QueryCtx(ctx, "reader", "read", "//book[title]", QueryOptions{DisableSummarySkip: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(on) != len(off) {
		t.Fatalf("answers differ: %d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i].Node != off[i].Node {
			t.Fatalf("answer %d differs: %d vs %d", i, on[i].Node, off[i].Node)
		}
	}
}
